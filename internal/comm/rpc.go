package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// ErrRPCTimeout is returned by Call when no response arrives in time.
var ErrRPCTimeout = errors.New("comm: rpc timed out")

// RemoteError carries an application-level failure back to the caller.
type RemoteError struct{ Msg string }

func (e RemoteError) Error() string { return "comm: remote error: " + e.Msg }

// RPC layers request/reply on top of a Transport for one site. The owner
// must route every incoming message with IsResp==true to HandleResponse;
// requests are handled by the owner's normal message dispatch, which
// answers them with Reply.
type RPC struct {
	site model.SiteID
	tr   Transport

	next    atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan Message
	late    func(from model.SiteID, kind int)
}

// NewRPC returns an RPC endpoint for site over tr.
func NewRPC(site model.SiteID, tr Transport) *RPC {
	return &RPC{site: site, tr: tr, pending: make(map[uint64]chan Message)}
}

// SetLateHook installs an observer called once per response that arrives
// after its caller gave up (nil disables). Call before traffic starts.
func (r *RPC) SetLateHook(fn func(from model.SiteID, kind int)) {
	r.mu.Lock()
	r.late = fn
	r.mu.Unlock()
}

func (r *RPC) noteLate(from model.SiteID, kind int) {
	r.mu.Lock()
	fn := r.late
	r.mu.Unlock()
	if fn != nil {
		fn(from, kind)
	}
}

// Call sends a request and waits for the matching response or the
// timeout. A response whose payload is a RemoteError is unwrapped into an
// error return.
func (r *RPC) Call(to model.SiteID, kind int, payload any, timeout time.Duration) (any, error) {
	return r.CallSpan(to, kind, payload, timeout, model.SpanContext{})
}

// CallSpan is Call with a causal span context stamped on the request
// (and, via Reply, echoed on the response).
func (r *RPC) CallSpan(to model.SiteID, kind int, payload any, timeout time.Duration, sc model.SpanContext) (any, error) {
	id := r.next.Add(1)
	ch := make(chan Message, 1)
	r.mu.Lock()
	r.pending[id] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		// Race window: HandleResponse may have fetched ch before the delete
		// and buffered the response after the timer fired. Drain so the
		// response is accounted for rather than silently vanishing.
		select {
		case resp := <-ch:
			r.noteLate(resp.From, resp.Kind)
		default:
		}
	}()

	err := r.tr.Send(Message{From: r.site, To: to, Kind: kind, ReqID: id, Span: sc, Payload: payload})
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if re, ok := resp.Payload.(RemoteError); ok {
			return nil, re
		}
		return resp.Payload, nil
	case <-timer.C:
		return nil, fmt.Errorf("%w: kind %d to s%d", ErrRPCTimeout, kind, to)
	}
}

// CallRetry is Call with up to attempts tries, re-sending on timeout with
// the same per-attempt timeout. Only use it for idempotent requests: a
// timed-out attempt may still have been executed by the callee, so a
// retry can execute it again. Non-timeout failures (transport error,
// RemoteError) are returned immediately — retrying cannot fix those.
func (r *RPC) CallRetry(to model.SiteID, kind int, payload any, timeout time.Duration, attempts int) (any, error) {
	return r.CallRetrySpan(to, kind, payload, timeout, attempts, model.SpanContext{})
}

// CallRetrySpan is CallRetry with a causal span context on each attempt.
func (r *RPC) CallRetrySpan(to model.SiteID, kind int, payload any, timeout time.Duration, attempts int, sc model.SpanContext) (any, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		var resp any
		resp, err = r.CallSpan(to, kind, payload, timeout, sc)
		if err == nil || !errors.Is(err, ErrRPCTimeout) {
			return resp, err
		}
	}
	return nil, fmt.Errorf("comm: %d attempts: %w", attempts, err)
}

// Reply answers a request message. The response reuses the request's kind
// with IsResp set.
//
// Replying externalizes whatever state transition the request caused, so
// on WAL-backed paths every Reply must be dominated by a group-commit
// fsync of the records that transition wrote (docs/DURABILITY.md). The
// waldiscipline analyzer enforces this at every call site in the
// engines.
//
// repl:durable sync
func (r *RPC) Reply(req Message, payload any) {
	if req.ReqID == 0 {
		panic("comm: Reply to a non-request message")
	}
	// The response inherits the request's span context, so the reply leg
	// is attributed to the same causal parent as the request.
	//lint:allow senderr a lost reply is indistinguishable from a dropped response; the caller times out and retries
	_ = r.tr.Send(Message{
		From: r.site, To: req.From, Kind: req.Kind,
		ReqID: req.ReqID, IsResp: true, Span: req.Span, Payload: payload,
	})
}

// ReplyError answers a request with an application-level error.
func (r *RPC) ReplyError(req Message, err error) {
	r.Reply(req, RemoteError{Msg: err.Error()})
}

// HandleResponse routes a response message to its waiting caller. Late
// responses (caller already timed out and removed its pending entry) are
// dropped and reported through the late hook; so are extra responses to a
// request that was already answered (possible when a retried idempotent
// call draws two replies).
func (r *RPC) HandleResponse(msg Message) {
	r.mu.Lock()
	ch := r.pending[msg.ReqID]
	r.mu.Unlock()
	if ch == nil {
		r.noteLate(msg.From, msg.Kind)
		return
	}
	select {
	case ch <- msg:
	default:
		r.noteLate(msg.From, msg.Kind)
	}
}
