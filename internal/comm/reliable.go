package comm

import (
	"encoding/gob"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// The protocols require exactly-once FIFO delivery between each ordered
// site pair (§1.1); Reliable manufactures that contract out of a transport
// that may drop, duplicate, delay or reorder messages (fault.Transport, or
// a TCP connection that died mid-stream). Classic ARQ: the sender stamps
// each edge's messages with a monotonic sequence number and keeps them in
// an unacked outbox, retransmitting with exponential backoff and jitter;
// the receiver acknowledges cumulatively, drops duplicates, and buffers
// out-of-order arrivals so the application handler sees every message
// exactly once, in send order. Every protocol engine runs unmodified on
// top of a lossy network when wrapped in this sublayer.

// Reserved message kinds for the reliability envelope; protocol kinds are
// positive, so the sublayer's control traffic can never collide.
const (
	kindRelData = -1
	kindRelAck  = -2
)

// RelDataPayload envelopes one application message with its per-edge
// sequence number (starting at 1).
type RelDataPayload struct {
	Seq uint64
	Msg Message
}

// WireSize implements PayloadSizer: the inner message plus the sequence
// number.
func (p RelDataPayload) WireSize() int { return 8 + msgWireSize(p.Msg) }

// RelAckPayload acknowledges every sequence number <= Cum on its edge.
type RelAckPayload struct {
	Cum uint64
}

// WireSize implements PayloadSizer.
func (p RelAckPayload) WireSize() int { return 8 }

// RegisterReliablePayloads registers the envelope types for gob encoding;
// TCP deployments using Reliable must call it once at startup.
func RegisterReliablePayloads() {
	gob.Register(RelDataPayload{})
	gob.Register(RelAckPayload{})
}

// ReliableStats observes the sublayer's recovery work for the live
// metrics registry. Implementations must be safe for concurrent use; nil
// disables observation.
type ReliableStats interface {
	// RelRetransmit is called when n unacked messages are retransmitted on
	// the from→to edge.
	RelRetransmit(from, to model.SiteID, n int)
	// RelDupDropped is called when the receiver discards a duplicate.
	RelDupDropped(from, to model.SiteID)
	// RelBuffered is called when the receiver buffers an out-of-order
	// arrival until the gap before it fills.
	RelBuffered(from, to model.SiteID)
}

// ReliableConfig tunes the retransmission machinery; zero values select
// the defaults.
type ReliableConfig struct {
	// RTO is the initial retransmit timeout (default 20ms). It should
	// comfortably exceed one round trip on the underlying transport.
	RTO time.Duration
	// MaxRTO caps the exponential backoff (default 16×RTO).
	MaxRTO time.Duration
	// Jitter is the fraction of the current timeout added uniformly at
	// random to each retransmission deadline, decorrelating edges that
	// started retransmitting together (default 0.2).
	Jitter float64
	// Seed roots the jitter RNG, keeping runs reproducible (default 1).
	Seed int64
	// Tick is the outbox scan period (default RTO/4).
	Tick time.Duration
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.RTO <= 0 {
		c.RTO = 20 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 16 * c.RTO
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tick <= 0 {
		c.Tick = c.RTO / 4
	}
	return c
}

// relSender is one edge's outbox.
type relSender struct {
	mu      sync.Mutex
	next    uint64 // last assigned sequence number
	unacked []relPending
	rto     time.Duration
	due     time.Time
}

type relPending struct {
	seq uint64
	msg Message
}

// relReceiver is one edge's dedup/reorder state.
type relReceiver struct {
	mu       sync.Mutex
	expected uint64 // next sequence number to deliver (first is 1)
	buf      map[uint64]Message
}

// Reliable restores the exactly-once FIFO Transport contract over an
// unreliable inner transport. Close closes the inner transport too.
type Reliable struct {
	inner Transport
	cfg   ReliableConfig

	mu       sync.Mutex
	handlers map[model.SiteID]Handler
	senders  map[pair]*relSender
	recvs    map[pair]*relReceiver
	rng      *rand.Rand
	stats    ReliableStats
	tr       *trace.Recorder
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewReliable wraps inner in the reliable-delivery sublayer and starts its
// retransmission scanner.
func NewReliable(inner Transport, cfg ReliableConfig) *Reliable {
	cfg = cfg.withDefaults()
	r := &Reliable{
		inner:    inner,
		cfg:      cfg,
		handlers: make(map[model.SiteID]Handler),
		senders:  make(map[pair]*relSender),
		recvs:    make(map[pair]*relReceiver),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		done:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.retransmitter()
	return r
}

// SetStats installs the recovery-work observer (nil disables). Call before
// traffic starts.
func (r *Reliable) SetStats(s ReliableStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = s
}

// SetTrace installs a recorder for per-message recovery events
// (RelRetransmit, RelAck), attributed to the causal span of the
// enveloped application message. Call before traffic starts.
func (r *Reliable) SetTrace(tr *trace.Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr = tr
}

// Salts distinguishing the sublayer's auxiliary spans under one parent.
const (
	relAckSalt = 0xac1 << 32
	relRtxSalt = 0x572 << 32
)

// traceAux records one sublayer event as an auxiliary span of the
// enveloped message's causal parent. Unattributed traffic is skipped:
// with no parent span the event could not be placed in any tree.
func traceAux(tr *trace.Recorder, k trace.Kind, site, peer model.SiteID, sc model.SpanContext, salt uint64) {
	if tr == nil || sc.Parent == 0 {
		return
	}
	tr.RecordSpan(k, site, peer, sc.TID, 0, model.AuxSpan(sc.Parent, salt), sc.Parent)
}

func (r *Reliable) sender(p pair) *relSender {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.senders[p]
	if !ok {
		s = &relSender{rto: r.cfg.RTO}
		r.senders[p] = s
	}
	return s
}

func (r *Reliable) receiver(p pair) *relReceiver {
	r.mu.Lock()
	defer r.mu.Unlock()
	rc, ok := r.recvs[p]
	if !ok {
		rc = &relReceiver{expected: 1, buf: make(map[uint64]Message)}
		r.recvs[p] = rc
	}
	return rc
}

// jittered returns d plus the configured random fraction.
func (r *Reliable) jittered(d time.Duration) time.Duration {
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return d + time.Duration(f*r.cfg.Jitter*float64(d))
}

// Send implements Transport: the message enters the edge's outbox and
// stays there until cumulatively acknowledged; inner-transport failures
// are absorbed by retransmission.
func (r *Reliable) Send(msg Message) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.mu.Unlock()
	s := r.sender(pair{msg.From, msg.To})
	s.mu.Lock()
	s.next++
	env := Message{
		From: msg.From, To: msg.To, Kind: kindRelData,
		Payload: RelDataPayload{Seq: s.next, Msg: msg},
	}
	s.unacked = append(s.unacked, relPending{seq: s.next, msg: env})
	if len(s.unacked) == 1 {
		s.rto = r.cfg.RTO
		s.due = time.Now().Add(r.jittered(s.rto))
	}
	s.mu.Unlock()
	// A lost first transmission is indistinguishable from a dropped
	// message; the outbox covers both.
	//lint:allow senderr retransmission from the outbox covers a failed first send
	_ = r.inner.Send(env)
	return nil
}

// Register implements Transport, installing the sublayer's dispatcher for
// the site. Messages that do not carry the reliability envelope (mixed
// deployments) pass straight through.
func (r *Reliable) Register(site model.SiteID, h Handler) {
	r.mu.Lock()
	r.handlers[site] = h
	r.mu.Unlock()
	r.inner.Register(site, func(m Message) { r.dispatch(site, h, m) })
}

func (r *Reliable) dispatch(site model.SiteID, h Handler, m Message) {
	switch m.Kind {
	case kindRelAck:
		r.handleAck(m)
	case kindRelData:
		r.handleData(site, h, m)
	default:
		h(m)
	}
}

// handleAck drops every outbox entry the cumulative ack covers and, on
// progress, resets the edge's backoff.
func (r *Reliable) handleAck(m Message) {
	cum := m.Payload.(RelAckPayload).Cum
	// The ack travels on the reverse edge: it acknowledges data m.To sent
	// to m.From.
	s := r.sender(pair{m.To, m.From})
	s.mu.Lock()
	i := 0
	for i < len(s.unacked) && s.unacked[i].seq <= cum {
		i++
	}
	if i > 0 {
		s.unacked = append(s.unacked[:0], s.unacked[i:]...)
		s.rto = r.cfg.RTO
		if len(s.unacked) > 0 {
			s.due = time.Now().Add(r.jittered(s.rto))
		}
	}
	s.mu.Unlock()
}

// handleData delivers in-sequence messages (and any buffered successors),
// buffers out-of-order arrivals, discards duplicates, and acknowledges
// cumulatively.
func (r *Reliable) handleData(site model.SiteID, h Handler, m Message) {
	p := m.Payload.(RelDataPayload)
	edge := pair{m.From, site}
	r.mu.Lock()
	stats := r.stats
	tr := r.tr
	r.mu.Unlock()
	rc := r.receiver(edge)
	rc.mu.Lock()
	switch {
	case p.Seq == rc.expected:
		rc.expected++
		// Deliver, then drain the run the arrival unblocked. The handler
		// runs under the receiver lock, serializing this edge's delivery
		// exactly like a dedicated transport goroutine would.
		h(p.Msg)
		for {
			next, ok := rc.buf[rc.expected]
			if !ok {
				break
			}
			delete(rc.buf, rc.expected)
			rc.expected++
			h(next)
		}
	case p.Seq < rc.expected:
		if stats != nil {
			stats.RelDupDropped(edge.from, edge.to)
		}
	default: // a gap: hold until it fills
		if _, dup := rc.buf[p.Seq]; dup {
			if stats != nil {
				stats.RelDupDropped(edge.from, edge.to)
			}
		} else {
			rc.buf[p.Seq] = p.Msg
			if stats != nil {
				stats.RelBuffered(edge.from, edge.to)
			}
		}
	}
	cum := rc.expected - 1
	rc.mu.Unlock()
	traceAux(tr, trace.RelAck, site, m.From, p.Msg.Span, relAckSalt+p.Seq)
	//lint:allow senderr a lost ack only delays the sender; the next delivery or retransmit re-acks
	_ = r.inner.Send(Message{
		From: site, To: m.From, Kind: kindRelAck,
		Payload: RelAckPayload{Cum: cum},
	})
}

// retransmitter periodically rescans every outbox and resends overdue
// unacked messages, doubling that edge's timeout up to the cap.
func (r *Reliable) retransmitter() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-r.done:
			return
		}
		r.mu.Lock()
		senders := make([]*relSender, 0, len(r.senders))
		for _, s := range r.senders {
			senders = append(senders, s)
		}
		stats := r.stats
		tr := r.tr
		r.mu.Unlock()
		now := time.Now()
		for _, s := range senders {
			s.mu.Lock()
			var resend []Message
			if len(s.unacked) > 0 && now.After(s.due) {
				resend = make([]Message, len(s.unacked))
				for i, u := range s.unacked {
					resend[i] = u.msg
				}
				s.rto *= 2
				if s.rto > r.cfg.MaxRTO {
					s.rto = r.cfg.MaxRTO
				}
				s.due = now.Add(r.jittered(s.rto))
			}
			s.mu.Unlock()
			if len(resend) > 0 {
				if stats != nil {
					stats.RelRetransmit(resend[0].From, resend[0].To, len(resend))
				}
				for _, env := range resend {
					if p, ok := env.Payload.(RelDataPayload); ok {
						traceAux(tr, trace.RelRetransmit, env.From, env.To, p.Msg.Span, relRtxSalt+p.Seq)
					}
					//lint:allow senderr a failed retransmission is retried on the next tick
					_ = r.inner.Send(env)
				}
			}
		}
	}
}

// Close implements Transport: it stops retransmission and closes the
// inner transport. Unacked outbox contents are dropped, like any
// transport's in-flight messages.
func (r *Reliable) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	return r.inner.Close()
}
