package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func TestMemTransportDelivers(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	got := make(chan Message, 1)
	tr.Register(1, func(m Message) { got <- m })
	if err := tr.Send(Message{From: 0, To: 1, Kind: 7, Payload: "hi"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != 7 || m.Payload.(string) != "hi" {
			t.Errorf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestMemTransportFIFOPerPair(t *testing.T) {
	tr := NewMemTransport(100 * time.Microsecond)
	defer tr.Close()
	const n = 500
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	tr.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Kind)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), n)
	}
	for i, k := range got {
		if k != i {
			t.Fatalf("reordered at %d: got kind %d", i, k)
		}
	}
}

func TestMemTransportLatency(t *testing.T) {
	tr := NewMemTransport(30 * time.Millisecond)
	defer tr.Close()
	got := make(chan time.Time, 1)
	tr.Register(1, func(Message) { got <- time.Now() })
	start := time.Now()
	_ = tr.Send(Message{From: 0, To: 1})
	at := <-got
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", d)
	}
}

func TestMemTransportEdgeLatencyOverride(t *testing.T) {
	tr := NewMemTransport(1 * time.Millisecond)
	defer tr.Close()
	tr.SetEdgeLatency(0, 2, 60*time.Millisecond)
	type stamped struct {
		to model.SiteID
		at time.Time
	}
	got := make(chan stamped, 2)
	tr.Register(1, func(m Message) { got <- stamped{1, time.Now()} })
	tr.Register(2, func(m Message) { got <- stamped{2, time.Now()} })
	_ = tr.Send(Message{From: 0, To: 2})
	_ = tr.Send(Message{From: 0, To: 1})
	first := <-got
	second := <-got
	if first.to != 1 || second.to != 2 {
		t.Errorf("slow edge should deliver last: first=%v second=%v", first.to, second.to)
	}
}

func TestMemTransportJitterPreservesFIFO(t *testing.T) {
	tr := NewMemTransport(200 * time.Microsecond)
	tr.SetJitter(3 * time.Millisecond)
	defer tr.Close()
	const n = 300
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	tr.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Kind)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), n)
	}
	for i, k := range got {
		if k != i {
			t.Fatalf("jitter reordered messages at %d: got kind %d", i, k)
		}
	}
}

func TestMemTransportSendAfterClose(t *testing.T) {
	tr := NewMemTransport(0)
	tr.Register(1, func(Message) {})
	_ = tr.Close()
	if err := tr.Send(Message{From: 0, To: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	// Double close is fine.
	if err := tr.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRPCCallReply(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	server := NewRPC(1, tr)
	client := NewRPC(0, tr)
	tr.Register(1, func(m Message) {
		if m.IsResp {
			server.HandleResponse(m)
			return
		}
		server.Reply(m, m.Payload.(int)*2)
	})
	tr.Register(0, func(m Message) {
		if m.IsResp {
			client.HandleResponse(m)
		}
	})
	resp, err := client.Call(1, 5, 21, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(int) != 42 {
		t.Errorf("resp = %v", resp)
	}
}

func TestRPCTimeout(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	tr.Register(1, func(Message) {}) // never replies
	client := NewRPC(0, tr)
	tr.Register(0, func(m Message) { client.HandleResponse(m) })
	_, err := client.Call(1, 5, nil, 30*time.Millisecond)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Errorf("want ErrRPCTimeout, got %v", err)
	}
}

func TestRPCRemoteError(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	server := NewRPC(1, tr)
	client := NewRPC(0, tr)
	tr.Register(1, func(m Message) { server.ReplyError(m, fmt.Errorf("boom")) })
	tr.Register(0, func(m Message) { client.HandleResponse(m) })
	_, err := client.Call(1, 5, nil, time.Second)
	var re RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Msg != "boom" {
		t.Errorf("msg = %q", re.Msg)
	}
}

func TestRPCLateResponseDropped(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	server := NewRPC(1, tr)
	client := NewRPC(0, tr)
	proceed := make(chan struct{})
	tr.Register(1, func(m Message) {
		go func() {
			<-proceed
			server.Reply(m, "late")
		}()
	})
	tr.Register(0, func(m Message) { client.HandleResponse(m) })
	_, err := client.Call(1, 5, nil, 20*time.Millisecond)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	close(proceed)
	time.Sleep(20 * time.Millisecond) // late reply must not panic or leak
}

func TestReplyToNonRequestPanics(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	r := NewRPC(0, tr)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Reply(Message{ReqID: 0}, nil)
}

// TestMemTransportJitterDeterministicUnderSeed pins the seeded-jitter
// contract: same seed, same draw order → the identical delay sequence
// (chaos runs depend on this for reproducibility); a different seed must
// diverge.
func TestMemTransportJitterDeterministicUnderSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		tr := NewMemTransport(time.Millisecond)
		defer tr.Close()
		tr.SetJitter(5 * time.Millisecond)
		tr.SetSeed(seed)
		out := make([]time.Duration, 100)
		tr.mu.Lock()
		for i := range out {
			out[i] = tr.delayFor(pair{0, 1})
		}
		tr.mu.Unlock()
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter sequence")
	}
}

// TestMemTransportDelayForEdgeOverride verifies the per-edge override
// replaces (not augments) the default latency, only on its own edge, and
// composes with jitter as base + draw.
func TestMemTransportDelayForEdgeOverride(t *testing.T) {
	tr := NewMemTransport(time.Millisecond)
	defer tr.Close()
	tr.SetEdgeLatency(0, 2, 40*time.Millisecond)

	tr.mu.Lock()
	plain := tr.delayFor(pair{0, 1})
	slow := tr.delayFor(pair{0, 2})
	reverse := tr.delayFor(pair{2, 0})
	tr.mu.Unlock()
	if plain != time.Millisecond {
		t.Errorf("default edge: %v, want 1ms", plain)
	}
	if slow != 40*time.Millisecond {
		t.Errorf("overridden edge: %v, want 40ms", slow)
	}
	if reverse != time.Millisecond {
		t.Errorf("override leaked to the reverse edge: %v", reverse)
	}

	tr.SetJitter(5 * time.Millisecond)
	tr.mu.Lock()
	jittered := tr.delayFor(pair{0, 2})
	tr.mu.Unlock()
	if jittered < 40*time.Millisecond || jittered >= 45*time.Millisecond {
		t.Errorf("override+jitter: %v, want in [40ms, 45ms)", jittered)
	}
}
