package comm

import (
	"encoding/gob"
	"io"
)

// Message stream framing: the gob wire format TCPTransport speaks, one
// self-delimiting gob-encoded Message after another on a byte stream.
// Exported so other long-lived channels — the telemetry plane's
// publisher→aggregator connections — carry the same envelope with the
// same framing instead of inventing a second wire format. Gob streams
// are stateful (type descriptors are sent once, on first use), so a
// MsgWriter/MsgReader pair must live exactly as long as its connection.

// MsgWriter encodes Messages onto one byte stream and counts the exact
// bytes each message put on the wire. Not safe for concurrent use; the
// owner serializes writes per connection (as tcpConn.mu does).
type MsgWriter struct {
	enc *gob.Encoder
	cw  *countWriter
}

// NewMsgWriter returns a writer framing messages onto w.
func NewMsgWriter(w io.Writer) *MsgWriter {
	cw := &countWriter{w: w}
	return &MsgWriter{enc: gob.NewEncoder(cw), cw: cw}
}

// WriteMsg encodes one message and returns its exact wire size in bytes.
// Payload types must have been registered with RegisterPayload.
func (w *MsgWriter) WriteMsg(msg Message) (int, error) {
	before := w.cw.n
	err := w.enc.Encode(msg)
	return int(w.cw.n - before), err
}

// MsgReader decodes the stream a MsgWriter produced. Not safe for
// concurrent use.
type MsgReader struct {
	dec *gob.Decoder
}

// NewMsgReader returns a reader deframing messages from r.
func NewMsgReader(r io.Reader) *MsgReader {
	return &MsgReader{dec: gob.NewDecoder(r)}
}

// ReadMsg decodes the next message; io.EOF marks a cleanly closed
// stream.
func (r *MsgReader) ReadMsg() (Message, error) {
	var msg Message
	err := r.dec.Decode(&msg)
	return msg, err
}
