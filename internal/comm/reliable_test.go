package comm_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/obs"
)

// collector records delivered message kinds in arrival order.
type collector struct {
	mu  sync.Mutex
	got []int
}

func (c *collector) handler(m comm.Message) {
	c.mu.Lock()
	c.got = append(c.got, m.Kind)
	c.mu.Unlock()
}

func (c *collector) snapshot() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.got...)
}

func (c *collector) waitLen(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(c.snapshot()) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d/%d delivered in %v", len(c.snapshot()), n, timeout)
}

func reliableOverFaults(t *testing.T, f fault.Faults, seed int64) (*comm.Reliable, *fault.Transport, *obs.Registry) {
	t.Helper()
	mem := comm.NewMemTransport(0)
	ft, err := fault.New(mem, fault.Config{Seed: seed, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	rel := comm.NewReliable(ft, comm.ReliableConfig{RTO: 10 * time.Millisecond})
	reg := obs.NewRegistry()
	rel.SetStats(obs.NewReliableStats(reg))
	t.Cleanup(func() { rel.Close() })
	return rel, ft, reg
}

func TestReliableExactlyOnceFIFOUnderChaos(t *testing.T) {
	rel, _, reg := reliableOverFaults(t, fault.Faults{
		Drop: 0.2, Duplicate: 0.1, Delay: 0.2,
		DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
	}, 99)
	var c collector
	rel.Register(1, c.handler)
	rel.Register(0, func(comm.Message) {})
	const n = 300
	for i := 0; i < n; i++ {
		if err := rel.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitLen(t, n, 30*time.Second)
	got := c.snapshot()
	if len(got) != n {
		t.Fatalf("delivered %d messages, want exactly %d (duplicates leaked?)", len(got), n)
	}
	for i, k := range got {
		if k != i {
			t.Fatalf("order broken at %d: got %d", i, k)
		}
	}
	snap := reg.Snapshot()
	if snap[`repl_reliable_retransmits_total{from="0",to="1"}`] == 0 {
		t.Error("expected retransmissions under 20% drop")
	}
}

func TestReliableDedupsPureDuplication(t *testing.T) {
	rel, _, reg := reliableOverFaults(t, fault.Faults{Duplicate: 1}, 3)
	var c collector
	rel.Register(1, c.handler)
	rel.Register(0, func(comm.Message) {})
	const n = 50
	for i := 0; i < n; i++ {
		if err := rel.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitLen(t, n, 10*time.Second)
	time.Sleep(50 * time.Millisecond) // give duplicates time to arrive (and be dropped)
	if got := c.snapshot(); len(got) != n {
		t.Fatalf("delivered %d, want exactly %d", len(got), n)
	}
	if reg.Snapshot()[`repl_reliable_dup_dropped_total{from="0",to="1"}`] == 0 {
		t.Error("expected duplicate drops under 100% duplication")
	}
}

func TestReliableSurvivesPartitionAndHeal(t *testing.T) {
	rel, ft, _ := reliableOverFaults(t, fault.Faults{}, 1)
	var c collector
	rel.Register(1, c.handler)
	rel.Register(0, func(comm.Message) {})
	ft.Partition(0, 1)
	for i := 0; i < 10; i++ {
		if err := rel.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if n := len(c.snapshot()); n != 0 {
		t.Fatalf("%d messages crossed a partitioned edge", n)
	}
	ft.Heal(0, 1)
	c.waitLen(t, 10, 10*time.Second)
	for i, k := range c.snapshot() {
		if k != i {
			t.Fatalf("post-heal order broken at %d: got %d", i, k)
		}
	}
}

func TestReliableSurvivesCrashRestart(t *testing.T) {
	rel, ft, _ := reliableOverFaults(t, fault.Faults{}, 1)
	var c collector
	rel.Register(1, c.handler)
	rel.Register(0, func(comm.Message) {})
	ft.Crash(1)
	for i := 0; i < 10; i++ {
		if err := rel.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	ft.Restart(1)
	c.waitLen(t, 10, 10*time.Second)
	for i, k := range c.snapshot() {
		if k != i {
			t.Fatalf("post-restart order broken at %d: got %d", i, k)
		}
	}
}

func TestReliablePassesThroughNonEnvelopedMessages(t *testing.T) {
	mem := comm.NewMemTransport(0)
	rel := comm.NewReliable(mem, comm.ReliableConfig{})
	defer rel.Close()
	var c collector
	rel.Register(1, c.handler)
	// A message injected beneath the sublayer (no envelope) still reaches
	// the handler: mixed deployments degrade gracefully.
	if err := mem.Send(comm.Message{From: 0, To: 1, Kind: 7}); err != nil {
		t.Fatal(err)
	}
	c.waitLen(t, 1, 5*time.Second)
	if c.snapshot()[0] != 7 {
		t.Fatalf("got %v", c.snapshot())
	}
}

func TestReliableSendAfterClose(t *testing.T) {
	rel := comm.NewReliable(comm.NewMemTransport(0), comm.ReliableConfig{})
	rel.Register(1, func(comm.Message) {})
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rel.Send(comm.Message{From: 0, To: 1}); !errors.Is(err, comm.ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if err := rel.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReliableRPCOverLossyEdge(t *testing.T) {
	rel, _, _ := reliableOverFaults(t, fault.Faults{Drop: 0.3}, 17)
	server := comm.NewRPC(1, rel)
	client := comm.NewRPC(0, rel)
	rel.Register(1, func(m comm.Message) {
		if m.IsResp {
			server.HandleResponse(m)
			return
		}
		server.Reply(m, m.Payload.(int)*2)
	})
	rel.Register(0, func(m comm.Message) {
		if m.IsResp {
			client.HandleResponse(m)
		}
	})
	// With 30% drop an unprotected RPC fails often; over Reliable every
	// call must make it (retransmission outruns the generous timeout).
	for i := 0; i < 20; i++ {
		resp, err := client.Call(1, 5, i, 10*time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.(int) != i*2 {
			t.Fatalf("call %d: got %v", i, resp)
		}
	}
}
