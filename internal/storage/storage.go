// Package storage is the DataBlitz stand-in: a main-memory item store
// with a hash index on the item identifier (the paper's prototype, §5.2,
// used exactly this access path). Each site owns one Store holding the
// copies placed there. The store keeps a per-copy version counter tagged
// with the logical transaction that installed each value, which feeds the
// serializability checker; concurrency control is the caller's job (the
// lock manager), so the internal mutex only protects map structure.
package storage

import (
	"fmt"
	"sync"

	"repro/internal/model"
)

// Version describes the current state of one item copy.
type Version struct {
	Value  int64
	Num    uint64      // 0 for the initial value, then 1, 2, ...
	Writer model.TxnID // zero TxnID for the initial value
}

type copyState struct {
	ver Version
}

// Store holds the item copies resident at one site.
type Store struct {
	mu    sync.RWMutex
	items map[model.ItemID]*copyState
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{items: make(map[model.ItemID]*copyState)}
}

// Create installs item with its initial value (version 0). Creating an
// existing item is an error: placement is static in this system.
func (s *Store) Create(item model.ItemID, initial int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[item]; ok {
		return fmt.Errorf("storage: item %d already exists", item)
	}
	s.items[item] = &copyState{ver: Version{Value: initial}}
	return nil
}

// Has reports whether a copy of item resides here.
func (s *Store) Has(item model.ItemID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.items[item]
	return ok
}

// Read returns the current version of item. The caller must hold at least
// a shared lock on the item (the store mutex only protects its own
// structures, not transactional isolation).
func (s *Store) Read(item model.ItemID) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.items[item]
	if !ok {
		return Version{}, fmt.Errorf("storage: no copy of item %d at this site", item)
	}
	return cs.ver, nil
}

// Apply installs a new committed value for item on behalf of writer and
// returns the new version. The caller must hold the exclusive lock on the
// item.
//
// Apply mutates durable state, so on WAL-backed paths every direct call
// must be dominated by an append of the redo record that describes it
// (log-then-mutate); the waldiscipline analyzer enforces this at every
// call site in the engines.
//
// repl:durable
func (s *Store) Apply(item model.ItemID, value int64, writer model.TxnID) (Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.items[item]
	if !ok {
		return Version{}, fmt.Errorf("storage: no copy of item %d at this site", item)
	}
	cs.ver = Version{Value: value, Num: cs.ver.Num + 1, Writer: writer}
	return cs.ver, nil
}

// Load installs a recovered version of item verbatim — value, version
// number, and writer — when rebuilding a store from the redo log. Unlike
// Apply it does not advance the version counter: the log already replayed
// the advances. Loading an item with no copy here is an error (placement
// is static).
func (s *Store) Load(item model.ItemID, ver Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.items[item]
	if !ok {
		return fmt.Errorf("storage: no copy of item %d at this site", item)
	}
	cs.ver = ver
	return nil
}

// Snapshot returns the current value of every copy. Only meaningful when
// the site is quiesced.
func (s *Store) Snapshot() map[model.ItemID]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[model.ItemID]int64, len(s.items))
	for id, cs := range s.items {
		out[id] = cs.ver.Value
	}
	return out
}

// Len returns the number of copies stored here.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}
