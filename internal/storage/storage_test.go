package storage

import (
	"sync"
	"testing"

	"repro/internal/model"
)

func TestCreateReadApply(t *testing.T) {
	s := NewStore()
	if err := s.Create(1, 42); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != 42 || v.Num != 0 || !v.Writer.Zero() {
		t.Errorf("initial version = %+v", v)
	}
	w := model.TxnID{Site: 1, Seq: 9}
	nv, err := s.Apply(1, 100, w)
	if err != nil {
		t.Fatal(err)
	}
	if nv.Value != 100 || nv.Num != 1 || nv.Writer != w {
		t.Errorf("applied version = %+v", nv)
	}
	v, _ = s.Read(1)
	if v != nv {
		t.Errorf("read after apply = %+v, want %+v", v, nv)
	}
}

func TestVersionNumbersMonotone(t *testing.T) {
	s := NewStore()
	_ = s.Create(7, 0)
	for i := 1; i <= 5; i++ {
		v, err := s.Apply(7, int64(i), model.TxnID{Site: 0, Seq: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v.Num != uint64(i) {
			t.Errorf("version %d got Num %d", i, v.Num)
		}
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	s := NewStore()
	_ = s.Create(1, 0)
	if err := s.Create(1, 0); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestMissingItemErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Read(5); err == nil {
		t.Error("read of missing item succeeded")
	}
	if _, err := s.Apply(5, 1, model.TxnID{}); err == nil {
		t.Error("apply to missing item succeeded")
	}
	if s.Has(5) {
		t.Error("Has(5) true")
	}
}

func TestSnapshotAndLen(t *testing.T) {
	s := NewStore()
	_ = s.Create(1, 10)
	_ = s.Create(2, 20)
	_, _ = s.Apply(2, 25, model.TxnID{Site: 0, Seq: 1})
	snap := s.Snapshot()
	if snap[1] != 10 || snap[2] != 25 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

// TestConcurrentDisjointWriters exercises the structural mutex: writers on
// different items (as the lock manager guarantees) proceed concurrently
// and versions stay per-copy consistent.
func TestConcurrentDisjointWriters(t *testing.T) {
	s := NewStore()
	const items = 8
	for i := 0; i < items; i++ {
		_ = s.Create(model.ItemID(i), 0)
	}
	var wg sync.WaitGroup
	for i := 0; i < items; i++ {
		wg.Add(1)
		go func(item model.ItemID) {
			defer wg.Done()
			for n := 1; n <= 100; n++ {
				v, err := s.Apply(item, int64(n), model.TxnID{Site: model.SiteID(item), Seq: uint64(n)})
				if err != nil || v.Num != uint64(n) {
					t.Errorf("item %d apply %d: %v %v", item, n, v, err)
					return
				}
			}
		}(model.ItemID(i))
	}
	wg.Wait()
	for i := 0; i < items; i++ {
		v, _ := s.Read(model.ItemID(i))
		if v.Num != 100 || v.Value != 100 {
			t.Errorf("item %d final = %+v", i, v)
		}
	}
}
