package ts

import (
	"testing"

	"repro/internal/model"
)

// decodeTS turns fuzz bytes into a structurally valid timestamp: strictly
// ascending sites over a small universe, bounded LTS values.
func decodeTS(data []byte) Timestamp {
	t := Timestamp{}
	if len(data) > 0 {
		t.Epoch = uint64(data[0] % 3)
		data = data[1:]
	}
	site := -1
	for i := 0; i+1 < len(data) && len(t.Tuples) < 6; i += 2 {
		site += 1 + int(data[i]%3)
		t.Tuples = append(t.Tuples, Tuple{
			Site: model.SiteID(site),
			LTS:  uint64(data[i+1] % 5),
		})
	}
	if len(t.Tuples) == 0 {
		t.Tuples = []Tuple{{Site: 0, LTS: 0}}
	}
	return t
}

// FuzzTimestampCompare pins the comparator's defining laws on fuzz-built
// timestamps: antisymmetry, transitivity, and — the part ad-hoc
// reimplementations get wrong — *reverse* site order at the first
// differing tuple, same-site LTS order, and epoch dominance over the
// whole tuple vector.
func FuzzTimestampCompare(f *testing.F) {
	f.Add([]byte{0, 1, 1}, []byte{0, 2, 3, 1, 4}, []byte{1, 0, 0}, byte(1), byte(2))
	f.Add([]byte{1, 0, 0, 2, 2}, []byte{1}, []byte{2, 1, 1}, byte(3), byte(1))
	f.Fuzz(func(t *testing.T, ab, bb, cb []byte, siteDelta, ltsDelta byte) {
		a, b, c := decodeTS(ab), decodeTS(bb), decodeTS(cb)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if !a.Equal(a.Clone()) {
			t.Fatalf("reflexivity violated: %v is not equal to its clone", a)
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity violated: %v < %v < %v", a, b, c)
		}

		last := len(a.Tuples) - 1
		// Reverse site order: raising the site of the last tuple makes the
		// timestamp EARLIER — the natural ascending comparison gets exactly
		// this backwards.
		higherSite := a.Clone()
		higherSite.Tuples[last].Site += model.SiteID(siteDelta%5) + 1
		if !higherSite.Less(a) {
			t.Fatalf("reverse site order violated: %v (higher last site) must order before %v", higherSite, a)
		}
		// Same site, larger LTS: strictly later.
		higherLTS := a.Clone()
		higherLTS.Tuples[last].LTS += uint64(ltsDelta%5) + 1
		if !a.Less(higherLTS) {
			t.Fatalf("same-site LTS order violated: %v must order before %v", a, higherLTS)
		}
		// Epoch dominates the tuple vector entirely.
		newer := b.WithEpoch(a.Epoch + 1 + uint64(ltsDelta%3))
		if !a.Less(newer) {
			t.Fatalf("epoch dominance violated: %v must order before %v", a, newer)
		}
	})
}

// FuzzCompareTotalOrder checks the Definition 3.3 comparator's algebraic
// laws on fuzz-generated timestamp triples: antisymmetry, equality
// consistency, transitivity, and agreement with the prefix rule.
func FuzzCompareTotalOrder(f *testing.F) {
	f.Add([]byte{0, 1, 1}, []byte{0, 1, 1, 2, 1}, []byte{1, 0, 0})
	f.Add([]byte{2}, []byte{2, 3, 4}, []byte{2, 3, 4, 1, 1})
	f.Fuzz(func(t *testing.T, ab, bb, cb []byte) {
		a, b, c := decodeTS(ab), decodeTS(bb), decodeTS(cb)
		if err := a.Validate(); err != nil {
			t.Fatalf("decoder produced invalid timestamp: %v", err)
		}
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("equality inconsistent: %v vs %v", a, b)
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity violated: %v < %v < %v", a, b, c)
		}
		if a.IsPrefixOf(b) && len(a.Tuples) < len(b.Tuples) && !a.Less(b) {
			t.Fatalf("prefix rule violated: %v should be < %v", a, b)
		}
		// Appending always strictly increases (the invariant the DAG(T)
		// site-timestamp update relies on).
		bigger := a.Append(Tuple{Site: a.Last().Site + 1, LTS: 0})
		if !a.Less(bigger) {
			t.Fatalf("append did not increase: %v vs %v", a, bigger)
		}
		// Bumping the last tuple strictly increases.
		if !a.Less(a.BumpLast()) {
			t.Fatalf("bump did not increase: %v", a)
		}
	})
}
