package ts

import (
	"testing"

	"repro/internal/model"
)

// decodeTS turns fuzz bytes into a structurally valid timestamp: strictly
// ascending sites over a small universe, bounded LTS values.
func decodeTS(data []byte) Timestamp {
	t := Timestamp{}
	if len(data) > 0 {
		t.Epoch = uint64(data[0] % 3)
		data = data[1:]
	}
	site := -1
	for i := 0; i+1 < len(data) && len(t.Tuples) < 6; i += 2 {
		site += 1 + int(data[i]%3)
		t.Tuples = append(t.Tuples, Tuple{
			Site: model.SiteID(site),
			LTS:  uint64(data[i+1] % 5),
		})
	}
	if len(t.Tuples) == 0 {
		t.Tuples = []Tuple{{Site: 0, LTS: 0}}
	}
	return t
}

// FuzzCompareTotalOrder checks the Definition 3.3 comparator's algebraic
// laws on fuzz-generated timestamp triples: antisymmetry, equality
// consistency, transitivity, and agreement with the prefix rule.
func FuzzCompareTotalOrder(f *testing.F) {
	f.Add([]byte{0, 1, 1}, []byte{0, 1, 1, 2, 1}, []byte{1, 0, 0})
	f.Add([]byte{2}, []byte{2, 3, 4}, []byte{2, 3, 4, 1, 1})
	f.Fuzz(func(t *testing.T, ab, bb, cb []byte) {
		a, b, c := decodeTS(ab), decodeTS(bb), decodeTS(cb)
		if err := a.Validate(); err != nil {
			t.Fatalf("decoder produced invalid timestamp: %v", err)
		}
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("equality inconsistent: %v vs %v", a, b)
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity violated: %v < %v < %v", a, b, c)
		}
		if a.IsPrefixOf(b) && len(a.Tuples) < len(b.Tuples) && !a.Less(b) {
			t.Fatalf("prefix rule violated: %v should be < %v", a, b)
		}
		// Appending always strictly increases (the invariant the DAG(T)
		// site-timestamp update relies on).
		bigger := a.Append(Tuple{Site: a.Last().Site + 1, LTS: 0})
		if !a.Less(bigger) {
			t.Fatalf("append did not increase: %v vs %v", a, bigger)
		}
		// Bumping the last tuple strictly increases.
		if !a.Less(a.BumpLast()) {
			t.Fatalf("bump did not increase: %v", a)
		}
	})
}
