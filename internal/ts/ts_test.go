package ts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// mk builds a timestamp from (site, lts) pairs.
func mk(epoch uint64, pairs ...uint64) Timestamp {
	t := Timestamp{Epoch: epoch}
	for i := 0; i < len(pairs); i += 2 {
		t.Tuples = append(t.Tuples, Tuple{Site: model.SiteID(pairs[i]), LTS: pairs[i+1]})
	}
	return t
}

// TestPaperOrderingExamples checks the three orderings Definition 3.3
// lists explicitly:
//
//  1. (s1,1) < (s1,1)(s2,1)            — prefix rule
//  2. (s1,1)(s3,1) < (s1,1)(s2,1)      — reverse site comparison
//  3. (s1,1)(s2,1) < (s1,1)(s2,2)      — LTS comparison
func TestPaperOrderingExamples(t *testing.T) {
	cases := []struct {
		a, b Timestamp
	}{
		{mk(0, 1, 1), mk(0, 1, 1, 2, 1)},
		{mk(0, 1, 1, 3, 1), mk(0, 1, 1, 2, 1)},
		{mk(0, 1, 1, 2, 1), mk(0, 1, 1, 2, 2)},
	}
	for i, c := range cases {
		if !c.a.Less(c.b) {
			t.Errorf("case %d: %v should be < %v", i+1, c.a, c.b)
		}
		if c.b.Less(c.a) {
			t.Errorf("case %d: %v should not be < %v", i+1, c.b, c.a)
		}
	}
}

func TestEpochDominatesComparison(t *testing.T) {
	a := mk(1, 5, 9) // higher tuple content, lower epoch
	b := mk(2, 1, 1)
	if !a.Less(b) || b.Less(a) {
		t.Errorf("smaller epoch must order first: %v vs %v", a, b)
	}
}

func TestCompareEqual(t *testing.T) {
	a := mk(3, 1, 1, 2, 5)
	b := mk(3, 1, 1, 2, 5)
	if a.Compare(b) != 0 || !a.Equal(b) {
		t.Error("identical timestamps must compare equal")
	}
}

func TestExample11Timestamps(t *testing.T) {
	// §3.2.3 trace of Example 1.1: T1 gets (s1,1); after T1 commits at s2
	// the site timestamp is (s1,1)(s2,0); T2 then gets (s1,1)(s2,1).
	// T1's timestamp is a prefix of T2's, so s3 executes T1 first.
	s2 := New(2 - 1) // using 0-based sites: s2 is site 1
	t1 := mk(0, 0, 1)
	s2after := t1.Append(Tuple{Site: 1, LTS: 0})
	if got := mk(0, 0, 1, 1, 0); !s2after.Equal(got) {
		t.Fatalf("site timestamp after T1 = %v, want %v", s2after, got)
	}
	t2 := s2after.BumpLast()
	if !t1.Less(t2) {
		t.Errorf("T1 (%v) must order before T2 (%v)", t1, t2)
	}
	if !t1.IsPrefixOf(t2) {
		t.Errorf("T1 (%v) should be a prefix of T2 (%v)", t1, t2)
	}
	// And the interleaving §3.1 motivates: T3 committing at s3 right after
	// T1 gets (s1,1)(s3,1), which must order BEFORE (s1,1)(s2,1).
	t3 := mk(0, 0, 1, 2, 1)
	if !t3.Less(t2) {
		t.Errorf("(s1,1)(s3,1)=%v must order before (s1,1)(s2,1)=%v", t3, t2)
	}
	_ = s2
}

func TestNewAndBump(t *testing.T) {
	ts := New(4)
	if ts.Last() != (Tuple{Site: 4, LTS: 0}) {
		t.Errorf("New = %v", ts)
	}
	b := ts.BumpLast()
	if b.Last().LTS != 1 || ts.Last().LTS != 0 {
		t.Error("BumpLast must not mutate the receiver")
	}
}

func TestAppendDoesNotAlias(t *testing.T) {
	a := mk(0, 0, 1)
	b := a.Append(Tuple{Site: 1, LTS: 2})
	b.Tuples[0].LTS = 99
	if a.Tuples[0].LTS != 1 {
		t.Error("Append aliases the receiver's tuple slice")
	}
}

func TestValidate(t *testing.T) {
	if err := mk(0, 0, 1, 1, 0).Validate(); err != nil {
		t.Errorf("valid timestamp rejected: %v", err)
	}
	if err := mk(0, 1, 1, 0, 1).Validate(); err == nil {
		t.Error("out-of-order sites accepted")
	}
	if err := mk(0, 1, 1, 1, 2).Validate(); err == nil {
		t.Error("duplicate site accepted")
	}
	if err := (Timestamp{}).Validate(); err == nil {
		t.Error("empty timestamp accepted")
	}
}

func TestWithEpochAndClone(t *testing.T) {
	a := mk(1, 0, 1)
	b := a.WithEpoch(7)
	if b.Epoch != 7 || a.Epoch != 1 {
		t.Error("WithEpoch wrong")
	}
	c := a.Clone()
	c.Tuples[0].LTS = 42
	if a.Tuples[0].LTS != 1 {
		t.Error("Clone aliases tuples")
	}
}

// genTS generates a structurally valid random timestamp over a small site
// universe so that comparisons exercise prefixes and shared tuples often.
func genTS(rng *rand.Rand) Timestamp {
	n := 1 + rng.Intn(4)
	t := Timestamp{Epoch: uint64(rng.Intn(2))}
	site := -1
	for i := 0; i < n; i++ {
		site += 1 + rng.Intn(2)
		t.Tuples = append(t.Tuples, Tuple{Site: model.SiteID(site), LTS: uint64(rng.Intn(3))})
	}
	return t
}

func TestOrderingIsStrictTotalOrder(t *testing.T) {
	// Properties of Definition 3.3 (+epochs): trichotomy, asymmetry and
	// transitivity over random structurally-valid timestamps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := genTS(rng), genTS(rng), genTS(rng)
		// Trichotomy: exactly one of <, ==, > holds.
		cmp := a.Compare(b)
		if cmp != -b.Compare(a) {
			return false
		}
		if (cmp == 0) != a.Equal(b) {
			return false
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// Irreflexivity.
		if a.Less(a) {
			return false
		}
		// Prefix rule consistency: a strict prefix is always smaller.
		if len(a.Tuples) > 1 {
			pre := Timestamp{Epoch: a.Epoch, Tuples: a.Tuples[:len(a.Tuples)-1]}
			if !pre.Less(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	got := mk(2, 0, 1, 3, 4).String()
	if got != "e2:(s0,1)(s3,4)" {
		t.Errorf("String = %q", got)
	}
}
