package ts

import (
	"math/rand"
	"testing"
)

func benchTimestamps(n int) []Timestamp {
	rng := rand.New(rand.NewSource(7))
	out := make([]Timestamp, n)
	for i := range out {
		out[i] = genTS(rng)
	}
	return out
}

func BenchmarkCompare(b *testing.B) {
	tss := benchTimestamps(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tss[i%256].Compare(tss[(i+1)%256])
	}
}

func BenchmarkAppend(b *testing.B) {
	base := New(0)
	for i := 0; i < 6; i++ {
		base = base.Append(Tuple{Site: base.Last().Site + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = base.Append(Tuple{Site: 99, LTS: uint64(i)})
	}
}

func BenchmarkBumpLast(b *testing.B) {
	t := New(3)
	for i := 0; i < b.N; i++ {
		t = t.BumpLast()
	}
}
