// Package ts implements the DAG(T) protocol's timestamps (§3 of the
// paper): vectors of (site, local-timestamp) tuples compared
// lexicographically with a *reversed* site order (Definition 3.3), plus
// the epoch-number extension of §3.3 that guarantees progress.
//
// Site identifiers used inside tuples must be positions in the total
// order s1 < s2 < ... < sm over the sites that is consistent with the copy
// graph DAG (§3.1); the cluster layer numbers sites topologically so the
// raw SiteID serves directly.
package ts

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Tuple is the ordered pair (si, LTSi) of Definition 3.1: a site and the
// count of primary subtransactions that had committed there.
type Tuple struct {
	Site model.SiteID
	LTS  uint64
}

func (t Tuple) String() string { return fmt.Sprintf("(s%d,%d)", t.Site, t.LTS) }

// Timestamp is a vector of tuples (Definition 3.2) extended with the
// epoch number of §3.3. Tuples appear in ascending site order; the tuple
// for the owning site is last because every other tuple belongs to one of
// its copy-graph ancestors, which precede it in the total order.
type Timestamp struct {
	Epoch  uint64
	Tuples []Tuple
}

// New returns the initial timestamp (si, 0) of a site.
func New(site model.SiteID) Timestamp {
	return Timestamp{Tuples: []Tuple{{Site: site, LTS: 0}}}
}

// Clone returns a deep copy of t.
func (t Timestamp) Clone() Timestamp {
	return Timestamp{Epoch: t.Epoch, Tuples: append([]Tuple(nil), t.Tuples...)}
}

// Append returns the concatenation t · u, the operation performed when a
// secondary subtransaction commits at a site (§3.2.3): the site timestamp
// becomes TS(Ti)(si, LTSi).
func (t Timestamp) Append(u Tuple) Timestamp {
	out := Timestamp{Epoch: t.Epoch, Tuples: make([]Tuple, 0, len(t.Tuples)+1)}
	out.Tuples = append(out.Tuples, t.Tuples...)
	out.Tuples = append(out.Tuples, u)
	return out
}

// WithEpoch returns a copy of t with the epoch set to e.
func (t Timestamp) WithEpoch(e uint64) Timestamp {
	out := t.Clone()
	out.Epoch = e
	return out
}

// Last returns the final tuple of the vector (the owning site's own
// tuple). It panics on an empty timestamp.
func (t Timestamp) Last() Tuple { return t.Tuples[len(t.Tuples)-1] }

// BumpLast returns a copy of t whose final tuple's LTS is incremented —
// step 1 of the primary-subtransaction commit (§3.2.2).
func (t Timestamp) BumpLast() Timestamp {
	out := t.Clone()
	out.Tuples[len(out.Tuples)-1].LTS++
	return out
}

// Compare returns -1, 0 or +1 as t is before, equal to, or after u in the
// total order of Definition 3.3 extended with epochs (§3.3):
//
//   - different epochs: the smaller epoch is earlier;
//   - t a strict prefix of u: t is earlier (and vice versa);
//   - otherwise at the first differing tuple position, (si, li) vs
//     (sj, lj): t is earlier iff si > sj (reverse site order!), or
//     si == sj and li < lj.
func (t Timestamp) Compare(u Timestamp) int {
	if t.Epoch != u.Epoch {
		if t.Epoch < u.Epoch {
			return -1
		}
		return +1
	}
	n := len(t.Tuples)
	if len(u.Tuples) < n {
		n = len(u.Tuples)
	}
	for i := 0; i < n; i++ {
		a, b := t.Tuples[i], u.Tuples[i]
		if a == b {
			continue
		}
		if a.Site != b.Site {
			if a.Site > b.Site { // reverse ordering on sites
				return -1
			}
			return +1
		}
		if a.LTS < b.LTS {
			return -1
		}
		return +1
	}
	switch {
	case len(t.Tuples) < len(u.Tuples):
		return -1 // prefix rule
	case len(t.Tuples) > len(u.Tuples):
		return +1
	default:
		return 0
	}
}

// Less reports whether t orders strictly before u.
func (t Timestamp) Less(u Timestamp) bool { return t.Compare(u) < 0 }

// Equal reports whether t and u are identical timestamps.
func (t Timestamp) Equal(u Timestamp) bool { return t.Compare(u) == 0 }

// IsPrefixOf reports whether t's tuple vector is a (possibly equal) prefix
// of u's and the epochs match.
func (t Timestamp) IsPrefixOf(u Timestamp) bool {
	if t.Epoch != u.Epoch || len(t.Tuples) > len(u.Tuples) {
		return false
	}
	for i, tup := range t.Tuples {
		if u.Tuples[i] != tup {
			return false
		}
	}
	return true
}

// Validate checks the structural invariant of Definition 3.2: tuples
// appear in strictly ascending site order.
func (t Timestamp) Validate() error {
	if len(t.Tuples) == 0 {
		return fmt.Errorf("ts: empty timestamp")
	}
	for i := 1; i < len(t.Tuples); i++ {
		if t.Tuples[i].Site <= t.Tuples[i-1].Site {
			return fmt.Errorf("ts: tuples out of site order at %d: %v", i, t)
		}
	}
	return nil
}

func (t Timestamp) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d:", t.Epoch)
	for _, tup := range t.Tuples {
		b.WriteString(tup.String())
	}
	return b.String()
}
