package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
)

// Op is one schedule action.
type Op uint8

const (
	// OpCut partitions the directed A→B edge.
	OpCut Op = iota + 1
	// OpHeal restores the directed A→B edge.
	OpHeal
	// OpCrash takes site A down.
	OpCrash
	// OpRestart brings site A back.
	OpRestart
)

func (o Op) String() string {
	switch o {
	case OpCut:
		return "cut"
	case OpHeal:
		return "heal"
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one timed schedule action; At is relative to Play's start. B is
// meaningful for OpCut/OpHeal only.
type Event struct {
	At   time.Duration
	Op   Op
	A, B model.SiteID
}

func (e Event) String() string {
	switch e.Op {
	case OpCut, OpHeal:
		return fmt.Sprintf("t=%v %v s%d->s%d", e.At, e.Op, e.A, e.B)
	default:
		return fmt.Sprintf("t=%v %v s%d", e.At, e.Op, e.A)
	}
}

// Schedule is a replayable, timed fault plan.
type Schedule []Event

// String renders the schedule one event per line — the byte-for-byte
// fingerprint reproducibility tests compare.
func (s Schedule) String() string {
	var b strings.Builder
	for _, e := range s {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Generate derives a deterministic chaos schedule from the seed: one
// bidirectional partition-and-heal between two random sites and one
// crash-and-restart of a third, all inside span. The same (seed, sites,
// span) always yields the byte-for-byte identical schedule.
func Generate(seed int64, sites int, span time.Duration) Schedule {
	if sites < 2 || span <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	frac := func(lo, hi float64) time.Duration {
		return time.Duration((lo + rng.Float64()*(hi-lo)) * float64(span))
	}
	a := model.SiteID(rng.Intn(sites))
	b := model.SiteID(rng.Intn(sites - 1))
	if b >= a {
		b++
	}
	cut, healAt := frac(0.10, 0.35), frac(0.45, 0.80)
	victim := model.SiteID(rng.Intn(sites))
	crash, restart := frac(0.10, 0.35), frac(0.45, 0.80)
	s := Schedule{
		{At: cut, Op: OpCut, A: a, B: b},
		{At: cut, Op: OpCut, A: b, B: a},
		{At: healAt, Op: OpHeal, A: a, B: b},
		{At: healAt, Op: OpHeal, A: b, B: a},
		{At: crash, Op: OpCrash, A: victim},
		{At: restart, Op: OpRestart, A: victim},
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// Play applies the schedule against the injector in real time, blocking
// until the last event fired or the injector closed. Run it in its own
// goroutine alongside the workload.
func (t *Transport) Play(s Schedule) {
	//lint:allow nodeterminism Play replays a schedule against real time by definition
	start := time.Now()
	for _, ev := range s {
		//lint:allow nodeterminism Play replays a schedule against real time by definition
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		if t.Closed() {
			return
		}
		switch ev.Op {
		case OpCut:
			t.Partition(ev.A, ev.B)
		case OpHeal:
			t.Heal(ev.A, ev.B)
		case OpCrash:
			t.Crash(ev.A)
		case OpRestart:
			t.Restart(ev.A)
		}
	}
}
