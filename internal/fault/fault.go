// Package fault manufactures an unreliable network out of a reliable one.
// The paper's protocols assume the network "delivers messages reliably and
// in FIFO order between any two sites" (§1.1) and that sites do not fail;
// this package deliberately breaks both assumptions so the rest of the
// system can be shown to restore them (comm.Reliable for the delivery
// contract, the 2PC decision-inquiry path for crash recovery).
//
// Transport wraps any comm.Transport and injects deterministic, seeded
// faults: per-edge message drop, duplication and extra delay, directed
// partitions with heal, and whole-site crash/restart. Every per-edge
// decision stream derives from the seed and the edge alone, so the k-th
// message on an edge meets the same fate in every run that sends the same
// k-th message — the strongest determinism available under concurrent
// senders. Schedule generation (see schedule.go) is fully deterministic:
// one seed always yields the byte-for-byte identical fault schedule.
//
// Injected faults are counted in an obs.Registry (repl_fault_* series)
// and recorded as trace events (FaultDrop, SiteCrash, PartitionCut, ...)
// so a chaos run can be audited offline.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Faults is one edge's fault mix. Probabilities are per message, drawn
// independently; a message can be both duplicated and delayed.
type Faults struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay is the probability a message is held for an extra delay drawn
	// uniformly from [DelayMin, DelayMax] before being handed to the inner
	// transport (which may reorder it past later messages on the edge).
	Delay              float64
	DelayMin, DelayMax time.Duration
}

// Validate checks the fault mix.
func (f Faults) Validate() error {
	for _, p := range []float64{f.Drop, f.Duplicate, f.Delay} {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: probability %v out of [0,1]", p)
		}
	}
	if f.DelayMin < 0 || f.DelayMax < f.DelayMin {
		return fmt.Errorf("fault: need 0 <= DelayMin <= DelayMax, got [%v, %v]", f.DelayMin, f.DelayMax)
	}
	return nil
}

// Config configures an injector.
type Config struct {
	// Seed roots every per-edge decision stream; two injectors with the
	// same seed make the same per-edge decisions.
	Seed int64
	// Faults is the default per-edge fault mix (see SetEdgeFaults for
	// overrides).
	Faults Faults
}

type edge struct{ from, to model.SiteID }

// edgeState is one directed edge's private fault stream.
type edgeState struct {
	rng    *rand.Rand
	faults Faults
}

// Lifecycle hooks a crash-recovery implementation into Crash and Restart.
// Both hooks run with the site's delivery gate write-held: no delivery is
// in flight at the site while they run, and none starts until they
// return. With no Lifecycle installed the injector keeps its legacy
// in-memory fail-recover mode — the site's heap state survives the
// outage untouched — which fast tests opt into by simply not wiring a
// WAL.
type Lifecycle struct {
	// OnCrash finalizes the dying site: fence its write-ahead log (un-
	// fsynced appends are honestly lost) and halt its engine. Everything
	// the site "knew" that never reached disk is gone when it returns.
	OnCrash func(site model.SiteID)
	// OnRestart rebuilds the site from its durable state: reopen the log,
	// replay snapshot + records, construct a fresh engine, and re-register
	// its handler. The site starts receiving again only after it returns.
	OnRestart func(site model.SiteID)
}

// Transport is a fault-injecting comm.Transport wrapper. All methods are
// safe for concurrent use. The zero faults mix makes it a transparent
// pass-through that still supports partitions and crashes.
type Transport struct {
	inner comm.Transport
	cfg   Config

	mu          sync.Mutex
	edges       map[edge]*edgeState
	overrides   map[edge]Faults
	partitioned map[edge]bool
	crashed     map[model.SiteID]bool
	gates       map[model.SiteID]*sync.RWMutex
	lifecycle   Lifecycle
	closed      bool

	trace *trace.Recorder
	ctr   counters
	wg    sync.WaitGroup // outstanding delayed deliveries
}

// counters are the injector's live metrics handles; nil handles (no
// registry) are no-ops.
type counters struct {
	dropRandom    *obs.Counter
	dropPartition *obs.Counter
	dropCrash     *obs.Counter
	duplicated    *obs.Counter
	delayed       *obs.Counter
	crashes       *obs.Counter
	restarts      *obs.Counter
	cuts          *obs.Counter
	heals         *obs.Counter
}

// New wraps inner in a fault injector.
func New(inner comm.Transport, cfg Config) (*Transport, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	return &Transport{
		inner:       inner,
		cfg:         cfg,
		edges:       make(map[edge]*edgeState),
		overrides:   make(map[edge]Faults),
		partitioned: make(map[edge]bool),
		crashed:     make(map[model.SiteID]bool),
		gates:       make(map[model.SiteID]*sync.RWMutex),
	}, nil
}

// SetLifecycle installs the crash-recovery hooks (see Lifecycle). Call
// before traffic starts.
func (t *Transport) SetLifecycle(lc Lifecycle) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lifecycle = lc
}

// gate returns site's delivery gate, creating it on first use. Every
// delivery to the site holds it shared; Crash and Restart hold it
// exclusive, which is what makes "no delivery straddles a crash"
// a guarantee rather than a race.
func (t *Transport) gate(site model.SiteID) *sync.RWMutex {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gates[site]
	if !ok {
		g = new(sync.RWMutex)
		t.gates[site] = g
	}
	return g
}

// SetObs installs the live-metrics registry the injector counts faults
// into (nil disables). Call before traffic starts.
func (t *Transport) SetObs(r *obs.Registry) {
	reason := func(v string) obs.Label { return obs.Label{Key: "reason", Value: v} }
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ctr = counters{
		dropRandom:    r.Counter("repl_fault_dropped_total", reason("random")),
		dropPartition: r.Counter("repl_fault_dropped_total", reason("partition")),
		dropCrash:     r.Counter("repl_fault_dropped_total", reason("crash")),
		duplicated:    r.Counter("repl_fault_duplicated_total"),
		delayed:       r.Counter("repl_fault_delayed_total"),
		crashes:       r.Counter("repl_fault_crashes_total"),
		restarts:      r.Counter("repl_fault_restarts_total"),
		cuts:          r.Counter("repl_fault_partition_cuts_total"),
		heals:         r.Counter("repl_fault_partition_heals_total"),
	}
}

// SetTrace installs the lifecycle-event recorder fault events are written
// to (nil disables). Call before traffic starts.
func (t *Transport) SetTrace(rec *trace.Recorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace = rec
}

// faultSalt distinguishes injected-fault auxiliary spans from the
// reliable sublayer's retransmit/ack spans under the same parent.
const faultSalt = 0xfa1 << 32

// spanOf extracts the causal span context of a message, looking through
// the reliable-delivery envelope when the sublayer runs above the
// injector (the usual chaos stack: engine → Reliable → fault → mem).
func spanOf(m comm.Message) model.SpanContext {
	if p, ok := m.Payload.(comm.RelDataPayload); ok {
		return p.Msg.Span
	}
	return m.Span
}

// traceFault records one per-message injected fault, attributed to the
// causal span of the affected message when it carries one.
func traceFault(rec *trace.Recorder, k trace.Kind, m comm.Message) {
	sc := spanOf(m)
	if sc.Parent == 0 {
		rec.Record(k, m.From, m.To, sc.TID, 0)
		return
	}
	rec.RecordSpan(k, m.From, m.To, sc.TID, 0, model.AuxSpan(sc.Parent, faultSalt), sc.Parent)
}

// SetEdgeFaults overrides the fault mix of one directed edge; other edges
// keep the Config default. Must be called before the edge carries traffic
// (later calls do not affect an already-started decision stream).
func (t *Transport) SetEdgeFaults(from, to model.SiteID, f Faults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.overrides[edge{from, to}] = f
	if st, ok := t.edges[edge{from, to}]; ok {
		st.faults = f
	}
	return nil
}

// edgeSeed derives a per-edge RNG seed from the injector seed, splitmix-
// style so adjacent edges get uncorrelated streams.
func edgeSeed(seed int64, from, to model.SiteID) int64 {
	z := uint64(seed) ^ (uint64(from)+1)*0x9e3779b97f4a7c15 ^ (uint64(to)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// state returns the edge's decision stream, creating it on first use. The
// caller holds t.mu.
func (t *Transport) state(e edge) *edgeState {
	st, ok := t.edges[e]
	if !ok {
		f, over := t.overrides[e]
		if !over {
			f = t.cfg.Faults
		}
		st = &edgeState{rng: rand.New(rand.NewSource(edgeSeed(t.cfg.Seed, e.from, e.to))), faults: f}
		t.edges[e] = st
	}
	return st
}

// Crash takes a site down: every message to or from it is dropped until
// Restart. Crash first drains the site's delivery gate — deliveries
// already dispatched into the site's handler finish (including their
// write-ahead fsync, so the reliable sublayer's "acknowledged" always
// means "durable") — then marks the site down and runs the Lifecycle
// OnCrash hook, which fences the site's log and halts its engine:
// volatile state is wiped with the process. Without a Lifecycle the
// legacy in-memory mode applies instead: the heap stands in for the
// disk and the site's state survives the outage untouched. The SiteCrash
// trace event marks the instant the site stops receiving, before any
// recovery work.
func (t *Transport) Crash(site model.SiteID) {
	g := t.gate(site)
	g.Lock()
	t.mu.Lock()
	t.crashed[site] = true
	rec := t.trace
	lc := t.lifecycle
	t.mu.Unlock()
	t.ctr.crashes.Inc()
	rec.Record(trace.SiteCrash, site, model.NoSite, model.TxnID{}, 0)
	if lc.OnCrash != nil {
		lc.OnCrash(site)
	}
	g.Unlock()
}

// Restart brings a crashed site back. The Lifecycle OnRestart hook runs
// first, with the delivery gate still write-held and the site still
// marked down: the rebuilt engine's recovery-time sends are dropped
// (crashed-from) and survive only through the reliable sublayer's
// retransmission, exactly like a real site whose first packets race its
// NIC coming up. Only after the hook returns is the site marked up; the
// SiteRestart trace event therefore marks the instant the site is
// actually serving again, not when recovery began.
func (t *Transport) Restart(site model.SiteID) {
	g := t.gate(site)
	g.Lock()
	t.mu.Lock()
	lc := t.lifecycle
	t.mu.Unlock()
	if lc.OnRestart != nil {
		lc.OnRestart(site)
	}
	t.mu.Lock()
	delete(t.crashed, site)
	rec := t.trace
	t.mu.Unlock()
	t.ctr.restarts.Inc()
	rec.Record(trace.SiteRestart, site, model.NoSite, model.TxnID{}, 0)
	g.Unlock()
}

// Crashed reports whether site is currently down.
func (t *Transport) Crashed(site model.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed[site]
}

// Partition cuts the directed from→to edge: messages on it are dropped
// until Heal. Cut both directions for a full partition.
func (t *Transport) Partition(from, to model.SiteID) {
	t.mu.Lock()
	t.partitioned[edge{from, to}] = true
	rec := t.trace
	t.mu.Unlock()
	t.ctr.cuts.Inc()
	rec.Record(trace.PartitionCut, from, to, model.TxnID{}, 0)
}

// Heal restores the directed from→to edge.
func (t *Transport) Heal(from, to model.SiteID) {
	t.mu.Lock()
	delete(t.partitioned, edge{from, to})
	rec := t.trace
	t.mu.Unlock()
	t.ctr.heals.Inc()
	rec.Record(trace.PartitionHeal, from, to, model.TxnID{}, 0)
}

// Register implements comm.Transport. The handler is wrapped so messages
// arriving at a crashed site are dropped: a down site neither sends nor
// receives, even messages already in flight. Each delivery holds the
// site's gate shared for the whole handler call, so a Crash either
// happens entirely before a delivery (which is then dropped) or entirely
// after it (which then completed, fsync and all) — never in the middle.
func (t *Transport) Register(site model.SiteID, h comm.Handler) {
	t.inner.Register(site, func(m comm.Message) {
		g := t.gate(site)
		g.RLock()
		defer g.RUnlock()
		t.mu.Lock()
		down := t.crashed[site]
		rec := t.trace
		t.mu.Unlock()
		if down {
			t.ctr.dropCrash.Inc()
			traceFault(rec, trace.FaultDrop, m)
			return
		}
		h(m)
	})
}

// Send implements comm.Transport, applying the edge's fault decisions. A
// dropped message returns nil: the sender believes it was sent, exactly
// like a lost datagram.
func (t *Transport) Send(msg comm.Message) error {
	e := edge{msg.From, msg.To}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return comm.ErrClosed
	}
	if t.crashed[msg.From] || t.crashed[msg.To] {
		rec := t.trace
		t.mu.Unlock()
		t.ctr.dropCrash.Inc()
		traceFault(rec, trace.FaultDrop, msg)
		return nil
	}
	if t.partitioned[e] {
		rec := t.trace
		t.mu.Unlock()
		t.ctr.dropPartition.Inc()
		traceFault(rec, trace.FaultDrop, msg)
		return nil
	}
	st := t.state(e)
	// Always draw the full per-message tuple so the edge's decision stream
	// stays aligned with the message count regardless of outcomes.
	f := st.faults
	uDrop, uDup, uDelay, uFrac := st.rng.Float64(), st.rng.Float64(), st.rng.Float64(), st.rng.Float64()
	rec := t.trace
	t.mu.Unlock()

	if uDrop < f.Drop {
		t.ctr.dropRandom.Inc()
		traceFault(rec, trace.FaultDrop, msg)
		return nil
	}
	if uDup < f.Duplicate {
		t.ctr.duplicated.Inc()
		traceFault(rec, trace.FaultDuplicate, msg)
		if err := t.inner.Send(msg); err != nil {
			return err
		}
	}
	if uDelay < f.Delay && f.DelayMax > 0 {
		d := f.DelayMin + time.Duration(uFrac*float64(f.DelayMax-f.DelayMin))
		t.ctr.delayed.Inc()
		traceFault(rec, trace.FaultDelay, msg)
		// The Add must be ordered against Close's closed=true under t.mu:
		// a late sender (e.g. the reliable sublayer acking a delivery that
		// raced shutdown) calling Add while Close is in Wait with the
		// counter at zero is the sync.WaitGroup misuse the race detector
		// flags. Once closed, skip the hold and deliver inline.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return t.inner.Send(msg)
		}
		t.wg.Add(1)
		t.mu.Unlock()
		time.AfterFunc(d, func() {
			defer t.wg.Done()
			t.mu.Lock()
			blocked := t.closed || t.crashed[msg.From] || t.crashed[msg.To] || t.partitioned[e]
			t.mu.Unlock()
			if blocked {
				// The edge went down while the message was in the air.
				if !t.Closed() {
					t.ctr.dropPartition.Inc()
				}
				return
			}
			//lint:allow senderr delayed delivery has no caller left to inform; injected loss is counted separately
			_ = t.inner.Send(msg)
		})
		return nil
	}
	return t.inner.Send(msg)
}

// Closed reports whether Close was called.
func (t *Transport) Closed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Close implements comm.Transport: it waits for in-flight delayed
// deliveries (bounded by DelayMax) and closes the inner transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	return t.inner.Close()
}
