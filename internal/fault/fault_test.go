package fault

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/obs"
)

func newFaulty(t *testing.T, cfg Config) (*Transport, *comm.MemTransport) {
	t.Helper()
	mem := comm.NewMemTransport(0)
	ft, err := New(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ft.Close() })
	return ft, mem
}

// collect registers a recording handler for site and returns the ordered
// kinds received plus a way to read them.
func collect(ft *Transport, site model.SiteID) func() []int {
	var mu sync.Mutex
	var got []int
	ft.Register(site, func(m comm.Message) {
		mu.Lock()
		got = append(got, m.Kind)
		mu.Unlock()
	})
	return func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), got...)
	}
}

func TestZeroFaultsPassThroughFIFO(t *testing.T) {
	ft, _ := newFaulty(t, Config{Seed: 1})
	read := collect(ft, 1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := ft.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(read()) == n })
	for i, k := range read() {
		if k != i {
			t.Fatalf("reordered at %d: got %d", i, k)
		}
	}
}

func TestDropDeterminismPerEdge(t *testing.T) {
	run := func() []int {
		ft, _ := newFaulty(t, Config{Seed: 42, Faults: Faults{Drop: 0.3}})
		read := collect(ft, 1)
		for i := 0; i < 300; i++ {
			if err := ft.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
				t.Fatal(err)
			}
		}
		// Zero-latency inner transport: quiesce by waiting for stability.
		var last []int
		for i := 0; i < 50; i++ {
			time.Sleep(10 * time.Millisecond)
			cur := read()
			if len(cur) == len(last) && len(cur) > 0 {
				return cur
			}
			last = cur
		}
		return read()
	}
	a, b := run(), run()
	if len(a) == 300 || len(a) == 0 {
		t.Fatalf("drop rate 0.3 delivered %d/300", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDuplicationCountsAndDelivers(t *testing.T) {
	reg := obs.NewRegistry()
	ft, _ := newFaulty(t, Config{Seed: 7, Faults: Faults{Duplicate: 1}})
	ft.SetObs(reg)
	read := collect(ft, 1)
	for i := 0; i < 10; i++ {
		if err := ft.Send(comm.Message{From: 0, To: 1, Kind: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(read()) == 20 })
	if got := reg.Snapshot()["repl_fault_duplicated_total"]; got != 10 {
		t.Errorf("duplicated counter = %d, want 10", got)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	reg := obs.NewRegistry()
	ft, _ := newFaulty(t, Config{Seed: 1})
	ft.SetObs(reg)
	read := collect(ft, 1)
	ft.Partition(0, 1)
	for i := 0; i < 5; i++ {
		_ = ft.Send(comm.Message{From: 0, To: 1, Kind: i})
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(read()); n != 0 {
		t.Fatalf("partitioned edge delivered %d messages", n)
	}
	ft.Heal(0, 1)
	_ = ft.Send(comm.Message{From: 0, To: 1, Kind: 99})
	waitFor(t, func() bool { return len(read()) == 1 })
	snap := reg.Snapshot()
	if snap[`repl_fault_dropped_total{reason="partition"}`] != 5 {
		t.Errorf("partition drops = %d, want 5", snap[`repl_fault_dropped_total{reason="partition"}`])
	}
	if snap["repl_fault_partition_cuts_total"] != 1 || snap["repl_fault_partition_heals_total"] != 1 {
		t.Errorf("cut/heal counters wrong: %v", snap)
	}
}

func TestCrashDropsBothDirectionsAndInFlight(t *testing.T) {
	mem := comm.NewMemTransport(50 * time.Millisecond)
	ft, err := New(mem, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	reg := obs.NewRegistry()
	ft.SetObs(reg)
	read := collect(ft, 1)
	ft.Register(0, func(comm.Message) {})

	// In flight toward site 1 when it crashes: dropped at delivery.
	_ = ft.Send(comm.Message{From: 0, To: 1, Kind: 1})
	ft.Crash(1)
	// Sent while down, in both directions: dropped at send.
	_ = ft.Send(comm.Message{From: 0, To: 1, Kind: 2})
	_ = ft.Send(comm.Message{From: 1, To: 0, Kind: 3})
	time.Sleep(100 * time.Millisecond)
	if n := len(read()); n != 0 {
		t.Fatalf("crashed site received %d messages", n)
	}
	ft.Restart(1)
	_ = ft.Send(comm.Message{From: 0, To: 1, Kind: 4})
	waitFor(t, func() bool { return len(read()) == 1 })
	if got := read(); got[0] != 4 {
		t.Fatalf("post-restart message = %d, want 4", got[0])
	}
	snap := reg.Snapshot()
	if snap[`repl_fault_dropped_total{reason="crash"}`] != 3 {
		t.Errorf("crash drops = %d, want 3", snap[`repl_fault_dropped_total{reason="crash"}`])
	}
}

func TestDelayHoldsMessage(t *testing.T) {
	reg := obs.NewRegistry()
	ft, _ := newFaulty(t, Config{Seed: 1, Faults: Faults{Delay: 1, DelayMin: 40 * time.Millisecond, DelayMax: 60 * time.Millisecond}})
	ft.SetObs(reg)
	read := collect(ft, 1)
	start := time.Now()
	_ = ft.Send(comm.Message{From: 0, To: 1, Kind: 1})
	waitFor(t, func() bool { return len(read()) == 1 })
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Errorf("delayed message arrived after %v, want >= ~40ms", d)
	}
	if reg.Snapshot()["repl_fault_delayed_total"] != 1 {
		t.Errorf("delayed counter = %d, want 1", reg.Snapshot()["repl_fault_delayed_total"])
	}
}

func TestScheduleGenerateReproducible(t *testing.T) {
	a := Generate(123, 8, time.Second)
	b := Generate(123, 8, time.Second)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if a.String() == Generate(124, 8, time.Second).String() {
		t.Fatalf("different seeds produced identical schedules")
	}
	if len(a) != 6 {
		t.Fatalf("schedule has %d events, want 6:\n%s", len(a), a)
	}
	// The schedule must contain a cut+heal pair and a crash+restart pair,
	// each action after its counterpart.
	times := map[Op]time.Duration{}
	for _, e := range a {
		if _, ok := times[e.Op]; !ok {
			times[e.Op] = e.At
		}
	}
	if !(times[OpCut] < times[OpHeal]) || !(times[OpCrash] < times[OpRestart]) {
		t.Fatalf("schedule ordering wrong:\n%s", a)
	}
}

func TestPlayAppliesSchedule(t *testing.T) {
	ft, _ := newFaulty(t, Config{Seed: 1})
	ft.Register(1, func(comm.Message) {})
	s := Schedule{
		{At: 0, Op: OpCrash, A: 1},
		{At: 30 * time.Millisecond, Op: OpRestart, A: 1},
	}
	done := make(chan struct{})
	go func() { ft.Play(s); close(done) }()
	time.Sleep(10 * time.Millisecond)
	if !ft.Crashed(1) {
		t.Error("site 1 should be down after OpCrash")
	}
	<-done
	if ft.Crashed(1) {
		t.Error("site 1 should be up after OpRestart")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
