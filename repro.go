// Package repro is a from-scratch Go reproduction of "Update Propagation
// Protocols For Replicated Databases" (Breitbart, Komondoor, Rastogi,
// Seshadri, Silberschatz — SIGMOD 1999): lazy replica-update protocols
// that guarantee global serializability.
//
// The library implements the paper's two DAG protocols — DAG(WT), which
// routes secondary subtransactions along a tree derived from the copy
// graph, and DAG(T), which orders them with vector timestamps and epoch
// numbers — plus the hybrid BackEdge protocol for arbitrary (cyclic) copy
// graphs, the lazy primary-site-locking baseline (PSL), and the
// indiscriminate NaiveLazy propagation that demonstrates why ordering is
// needed. Every substrate is included: a DataBlitz-style main-memory
// store, a strict-2PL lock manager with timeout deadlock handling,
// FIFO transports (in-process and TCP), two-phase commit, the copy-graph
// machinery (backedge sets, feedback-arc-set heuristics, propagation
// trees), the §5.2 workload generator, and a harness that regenerates
// every figure of the paper's evaluation.
//
// # Quick start
//
//	cfg := repro.ClusterConfig{
//		Workload: repro.DefaultWorkload(),
//		Protocol: repro.BackEdge,
//		Params:   repro.DefaultParams(),
//		Latency:  150 * time.Microsecond,
//	}
//	c, err := repro.NewCluster(cfg)
//	if err != nil { ... }
//	c.Start()
//	defer c.Stop()
//	report, err := c.Run()           // drive the Table 1 client threads
//	_ = c.Quiesce(time.Minute)       // drain propagation
//	fmt.Println(report)
//
// Individual transactions run through a site's engine:
//
//	err := c.Engine(0).Execute([]repro.Op{
//		{Kind: repro.OpRead, Item: 3},
//		{Kind: repro.OpWrite, Item: 7, Value: 42},
//	})
//
// See the examples/ directory for complete programs and EXPERIMENTS.md
// for the reproduced evaluation.
package repro

import (
	"errors"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/txn"
	"repro/internal/workload"
)

// ErrAborted is wrapped by every Execute error caused by a transaction
// abort (deadlock timeout, global-deadlock victim, 2PC abort). Any other
// Execute error indicates a misuse (e.g. writing a non-local primary).
var ErrAborted = txn.ErrAborted

// IsAbort reports whether err is a transaction abort — the expected,
// retryable outcome under contention — rather than a programming error.
func IsAbort(err error) bool { return errors.Is(err, txn.ErrAborted) }

// Core protocol selection.
type (
	// Protocol selects an update-propagation protocol.
	Protocol = core.Protocol
	// Params are the protocol tunables of Table 1 (lock timeout, epoch
	// period, simulated per-operation cost, ...).
	Params = core.Params
	// Engine is one site's running protocol instance.
	Engine = core.Engine
)

// The five protocols.
const (
	// PSL is the lazy primary-site-locking baseline (§5.1).
	PSL = core.PSL
	// DAGWT is the tree-routed lazy protocol (§2); requires a DAG copy
	// graph.
	DAGWT = core.DAGWT
	// DAGT is the timestamp-ordered lazy protocol (§3); requires a DAG
	// copy graph.
	DAGT = core.DAGT
	// BackEdge is the hybrid protocol (§4) for arbitrary copy graphs.
	BackEdge = core.BackEdge
	// NaiveLazy is indiscriminate propagation — NOT serializable; it
	// exists to demonstrate the Example 1.1 anomaly.
	NaiveLazy = core.NaiveLazy
)

// Identifiers, operations and placement.
type (
	// SiteID identifies a database site (0..m-1, topologically ordered).
	SiteID = model.SiteID
	// ItemID identifies a logical data item.
	ItemID = model.ItemID
	// TxnID is a system-wide unique logical transaction identifier.
	TxnID = model.TxnID
	// Op is one read or write of a transaction program.
	Op = model.Op
	// Placement maps items to their primary and replica sites.
	Placement = model.Placement
)

// Operation kinds.
const (
	// OpRead reads an item (any local copy).
	OpRead = model.OpRead
	// OpWrite writes an item (primary copy must be local).
	OpWrite = model.OpWrite
)

// Cluster assembly and measurement.
type (
	// ClusterConfig describes a replicated database to assemble.
	ClusterConfig = cluster.Config
	// Cluster is a running multi-site replicated database.
	Cluster = cluster.Cluster
	// WorkloadConfig is the §5.2 workload parameter set (Table 1).
	WorkloadConfig = workload.Config
	// Report summarizes a run: per-site throughput, abort rate, response
	// times, propagation delay, message counts.
	Report = metrics.Report
)

// Experiment harness.
type (
	// Experiment is a named reproduction of one paper figure or metric.
	Experiment = harness.Experiment
	// ExperimentOptions configure scale, latency, seed and verification.
	ExperimentOptions = harness.Options
	// ExperimentResult holds the measured series of one experiment.
	ExperimentResult = harness.Result
	// Scale selects quick/medium/full (paper-sized) workloads.
	Scale = harness.Scale
)

// Experiment scales.
const (
	// ScaleQuick finishes in seconds per point.
	ScaleQuick = harness.Quick
	// ScaleMedium is the interactive default.
	ScaleMedium = harness.Medium
	// ScaleFull is the paper's Table 1 workload.
	ScaleFull = harness.Full
)

// NewCluster builds (without starting) a replicated database.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// DefaultWorkload returns the Table 1 default workload parameters.
func DefaultWorkload() WorkloadConfig { return workload.Default() }

// DefaultParams returns the prototype's protocol parameters (Table 1).
func DefaultParams() Params { return core.DefaultParams() }

// ParseProtocol converts a user-facing name ("psl", "dagwt", "dagt",
// "backedge", "naive") to a Protocol.
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// NewPlacement allocates an empty placement for hand-built layouts; fill
// Primary and Replicas, then call Finish.
func NewPlacement(sites, items int) *Placement { return model.NewPlacement(sites, items) }

// Experiments returns the registry of paper-evaluation experiments
// (fig2a, fig2b, fig3a, fig3b, responsetime, propdelay, ...).
func Experiments() []Experiment { return harness.Experiments() }

// LookupExperiment finds a registered experiment by name.
func LookupExperiment(name string) (Experiment, error) { return harness.Lookup(name) }

// PrintTable1 renders the effective Table 1 parameter settings.
func PrintTable1(w io.Writer, o ExperimentOptions) { harness.PrintTable1(w, o) }

// ExperimentCSVHeader is the column row for ExperimentResult.WriteCSVRows.
const ExperimentCSVHeader = harness.CSVHeader
