// Benchmarks regenerating the paper's evaluation artifacts (§5), one
// bench family per table/figure. Each iteration runs a complete scaled-
// down cluster point and reports the paper's metrics as custom benchmark
// outputs: tps/site (Figure y-axis), abort% and response time. Run the
// full-scale sweeps with cmd/replbench instead; these benches are the
// CI-sized regeneration hooks referenced by DESIGN.md's experiment index.
package repro_test

import (
	"testing"
	"time"

	"repro"
)

// benchParams are Table 1 parameters scaled so one point costs ~1 s.
func benchParams() repro.Params {
	p := repro.DefaultParams()
	p.OpCost = 50 * time.Microsecond
	return p
}

func benchWorkload() repro.WorkloadConfig {
	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 15
	return wl
}

// runPoint executes one full cluster lifecycle and reports the paper's
// metrics for it.
func runPoint(b *testing.B, cfg repro.ClusterConfig) {
	b.Helper()
	var thr, abort, resp float64
	for i := 0; i < b.N; i++ {
		c, err := repro.NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		rep, err := c.Run()
		if err != nil {
			c.Stop()
			b.Fatal(err)
		}
		if err := c.Quiesce(2 * time.Minute); err != nil {
			c.Stop()
			b.Fatal(err)
		}
		c.Stop()
		thr += rep.ThroughputPerSite
		abort += rep.AbortRate
		resp += float64(rep.MeanResponse.Milliseconds())
	}
	n := float64(b.N)
	b.ReportMetric(thr/n, "tps/site")
	b.ReportMetric(abort/n, "abort%")
	b.ReportMetric(resp/n, "resp-ms")
	b.ReportMetric(0, "ns/op") // wall time is not the interesting axis
}

// BenchmarkTable1Default runs the Table 1 default configuration (scaled)
// under both measured protocols — the baseline every figure varies from.
func BenchmarkTable1Default(b *testing.B) {
	for _, proto := range []repro.Protocol{repro.BackEdge, repro.PSL} {
		b.Run(proto.String(), func(b *testing.B) {
			runPoint(b, repro.ClusterConfig{
				Workload: benchWorkload(),
				Protocol: proto,
				Params:   benchParams(),
				Latency:  150 * time.Microsecond,
			})
		})
	}
}

// BenchmarkFig2a regenerates Figure 2(a): throughput vs backedge
// probability, BackEdge vs PSL.
func BenchmarkFig2a(b *testing.B) {
	for _, bp := range []float64{0, 0.5, 1} {
		for _, proto := range []repro.Protocol{repro.BackEdge, repro.PSL} {
			b.Run(proto.String()+"/b="+ftoa(bp), func(b *testing.B) {
				wl := benchWorkload()
				wl.BackedgeProb = bp
				runPoint(b, repro.ClusterConfig{
					Workload: wl, Protocol: proto,
					Params: benchParams(), Latency: 150 * time.Microsecond,
				})
			})
		}
	}
}

// BenchmarkFig2b regenerates Figure 2(b): throughput vs replication
// probability.
func BenchmarkFig2b(b *testing.B) {
	for _, r := range []float64{0, 0.2, 1} {
		for _, proto := range []repro.Protocol{repro.BackEdge, repro.PSL} {
			b.Run(proto.String()+"/r="+ftoa(r), func(b *testing.B) {
				wl := benchWorkload()
				wl.ReplicationProb = r
				runPoint(b, repro.ClusterConfig{
					Workload: wl, Protocol: proto,
					Params: benchParams(), Latency: 150 * time.Microsecond,
				})
			})
		}
	}
}

// BenchmarkFig3a regenerates Figure 3(a): throughput vs read-operation
// probability at backedge probability 0 (r=0.5, no read-only txns).
func BenchmarkFig3a(b *testing.B) { benchFig3(b, 0) }

// BenchmarkFig3b regenerates Figure 3(b): the same sweep at backedge
// probability 1.
func BenchmarkFig3b(b *testing.B) { benchFig3(b, 1) }

func benchFig3(b *testing.B, backedge float64) {
	for _, ro := range []float64{0, 0.5, 1} {
		for _, proto := range []repro.Protocol{repro.BackEdge, repro.PSL} {
			b.Run(proto.String()+"/readOp="+ftoa(ro), func(b *testing.B) {
				wl := benchWorkload()
				wl.BackedgeProb = backedge
				wl.ReplicationProb = 0.5
				wl.ReadTxnProb = 0
				wl.ReadOpProb = ro
				runPoint(b, repro.ClusterConfig{
					Workload: wl, Protocol: proto,
					Params: benchParams(), Latency: 150 * time.Microsecond,
				})
			})
		}
	}
}

// BenchmarkResponseTime covers the §5.3.4 response-time comparison; the
// resp-ms metric is the artifact (paper: BackEdge ≈180 ms < PSL ≈260 ms
// on 1999 hardware).
func BenchmarkResponseTime(b *testing.B) {
	for _, proto := range []repro.Protocol{repro.BackEdge, repro.PSL} {
		b.Run(proto.String(), func(b *testing.B) {
			runPoint(b, repro.ClusterConfig{
				Workload: benchWorkload(), Protocol: proto,
				Params: benchParams(), Latency: 150 * time.Microsecond,
			})
		})
	}
}

// BenchmarkPropagationDelay covers §5.3.4's propagation-delay report.
func BenchmarkPropagationDelay(b *testing.B) {
	var mean, max float64
	for i := 0; i < b.N; i++ {
		c, err := repro.NewCluster(repro.ClusterConfig{
			Workload: benchWorkload(), Protocol: repro.BackEdge,
			Params: benchParams(), Latency: 150 * time.Microsecond,
			TrackPropagation: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		if _, err := c.Run(); err != nil {
			c.Stop()
			b.Fatal(err)
		}
		if err := c.Quiesce(2 * time.Minute); err != nil {
			c.Stop()
			b.Fatal(err)
		}
		rep := c.Metrics.Snapshot(9)
		c.Stop()
		mean += float64(rep.MeanPropDelay.Milliseconds())
		max += float64(rep.MaxPropDelay.Milliseconds())
	}
	b.ReportMetric(mean/float64(b.N), "prop-mean-ms")
	b.ReportMetric(max/float64(b.N), "prop-max-ms")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkDAGAblation compares the protocols (and both DAG(WT) tree
// shapes) on a DAG workload — the X4 ablation from DESIGN.md.
func BenchmarkDAGAblation(b *testing.B) {
	type variant struct {
		name  string
		proto repro.Protocol
		tree  bool
	}
	for _, v := range []variant{
		{"DAGWT-chain", repro.DAGWT, false},
		{"DAGWT-tree", repro.DAGWT, true},
		{"DAGT", repro.DAGT, false},
		{"BackEdge", repro.BackEdge, false},
		{"PSL", repro.PSL, false},
	} {
		b.Run(v.name, func(b *testing.B) {
			wl := benchWorkload()
			wl.BackedgeProb = 0
			runPoint(b, repro.ClusterConfig{
				Workload: wl, Protocol: v.proto,
				Params: benchParams(), Latency: 150 * time.Microsecond,
				GeneralTree: v.tree,
			})
		})
	}
}

func ftoa(f float64) string {
	switch f {
	case 0:
		return "0.0"
	case 0.2:
		return "0.2"
	case 0.5:
		return "0.5"
	case 1:
		return "1.0"
	default:
		return "x"
	}
}
