#!/usr/bin/env bash
# Freshness-observatory smoke: a seeded lazy run through
# `replbench -fresh` must produce non-empty propagation waterfalls, a
# freshness block certifying at least 95% of reads, and some stale
# certificates (a lazy engine under propagation latency always has
# readers behind the primary); a second run with the same seed must emit
# a byte-identical canonical freshness summary, and replexplain must
# reconstruct the waterfalls from the trace alone
# (docs/OBSERVABILITY.md, "Freshness observatory").
#
# Artifacts (traces, reports, canonical summaries, logs) land in
# $SMOKE_DIR (default: a temp dir, kept on failure so CI can upload it).
set -u -o pipefail

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/freshness-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"

# A lazy engine: DAG(WT) propagates down the tree FIFO, so reads at deep
# replicas trail the primary and the certificates have teeth.
SEED=7
PROTO=dagwt

echo "freshness smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/replbench" ./cmd/replbench || exit 1
go build -o "$SMOKE_DIR/replexplain" ./cmd/replexplain || exit 1

fail() {
  echo "freshness smoke FAILED: $1" >&2
  for log in run1.log run2.log; do
    if [ -s "$SMOKE_DIR/$log" ]; then
      echo "--- $log (tail) ---" >&2
      tail -20 "$SMOKE_DIR/$log" >&2
    fi
  done
  exit 1
}

run() { # run N -> run$N.jsonl, canon$N.json, report$N.json
  "$SMOKE_DIR/replbench" -trace "$SMOKE_DIR/run$1.jsonl" -traceproto "$PROTO" \
    -seed "$SEED" -fresh -freshsummary "$SMOKE_DIR/canon$1.json" -json \
    >"$SMOKE_DIR/report$1.json" 2>"$SMOKE_DIR/run$1.log" \
    || fail "replbench run $1 exited nonzero"
}
run 1
run 2

# The freshness block exists and certified stale reads: a lazy engine
# under 150µs propagation latency always catches readers behind.
grep -q '"freshness"' "$SMOKE_DIR/report1.json" \
  || fail "no freshness block in report1.json"
grep -q '"reads_stale": 0,' "$SMOKE_DIR/report1.json" \
  && fail "lazy run certified zero stale reads (certificates not wired?)"

# Certificate coverage: >=95% of reads carry a certificate.
coverage=$(awk '
  match($0, /"coverage_pct": [0-9.]+/) { print substr($0, RSTART+16, RLENGTH-16); exit }
  ' "$SMOKE_DIR/canon1.json")
[ -n "$coverage" ] || fail "no coverage_pct in canon1.json"
awk -v c="$coverage" 'BEGIN { exit !(c >= 95) }' \
  || fail "certificate coverage ${coverage}% below 95%"

# Byte-identical canonical freshness summaries across same-seed runs.
cmp -s "$SMOKE_DIR/canon1.json" "$SMOKE_DIR/canon2.json" \
  || fail "canonical freshness summaries differ between same-seed runs"

# Non-empty waterfalls, twice over: the offline join must reconstruct
# them from the trace alone (replexplain), and the trace summary must
# render the table.
"$SMOKE_DIR/replexplain" -json "$SMOKE_DIR/run1.jsonl" \
  >"$SMOKE_DIR/explain1.json" 2>>"$SMOKE_DIR/run1.log" \
  || fail "replexplain exited nonzero"
grep -q '"waterfalls"' "$SMOKE_DIR/explain1.json" \
  || fail "no waterfalls in explain1.json"
grep -q '"queue_wait"' "$SMOKE_DIR/explain1.json" \
  || fail "waterfall segments missing queue_wait"
"$SMOKE_DIR/replbench" -tracesummary "$SMOKE_DIR/run1.jsonl" \
  >"$SMOKE_DIR/summary1.txt" 2>>"$SMOKE_DIR/run1.log" \
  || fail "replbench -tracesummary exited nonzero"
grep -q 'propagation waterfalls:' "$SMOKE_DIR/summary1.txt" \
  || fail "no waterfall table in -tracesummary output"
grep -q 'read-freshness certificates:' "$SMOKE_DIR/summary1.txt" \
  || fail "no certificate table in -tracesummary output"

edges=$(grep -c -- '->' "$SMOKE_DIR/canon1.json")
echo "freshness smoke OK (coverage ${coverage}%, $edges propagation edges)"
