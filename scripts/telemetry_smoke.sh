#!/usr/bin/env bash
# Telemetry-plane smoke: two replnode processes stream telemetry to one
# repltop aggregator; repltop -once -json must converge to a snapshot
# that names both processes and their sites (docs/OBSERVABILITY.md,
# "Cluster telemetry plane"). Exercises the real wire path — TCP comm
# framing, delta frames, cross-process federation — not in-proc sinks.
#
# Artifacts (repltop.json, node logs) land in $SMOKE_DIR (default: a
# temp dir, kept on failure so CI can upload it).
set -u -o pipefail

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/telemetry-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"

# Fixed uncommon ports so failures are reproducible; override if taken.
TOP_PORT="${TOP_PORT:-17790}"
NODE0_PORT="${NODE0_PORT:-17791}"
NODE1_PORT="${NODE1_PORT:-17792}"
PEERS="0=127.0.0.1:${NODE0_PORT},1=127.0.0.1:${NODE1_PORT}"

echo "telemetry smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/replnode" ./cmd/replnode || exit 1
go build -o "$SMOKE_DIR/repltop" ./cmd/repltop || exit 1

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
}
trap cleanup EXIT

# Aggregator first: -once exits after every publisher has connected,
# streamed, and disconnected (or after -wait).
"$SMOKE_DIR/repltop" -listen "127.0.0.1:${TOP_PORT}" -once -wait 30s -json \
  >"$SMOKE_DIR/repltop.json" 2>"$SMOKE_DIR/repltop.log" &
top_pid=$!
pids+=("$top_pid")

common=(-peers "$PEERS" -protocol backedge -items 64 -seed 7 -threads 2 -txns 20
  -opcost 0 -drain 2s -watch -telemetry "127.0.0.1:${TOP_PORT}")
"$SMOKE_DIR/replnode" -site 0 "${common[@]}" >"$SMOKE_DIR/node0.log" 2>&1 &
pids+=("$!")
"$SMOKE_DIR/replnode" -site 1 "${common[@]}" >"$SMOKE_DIR/node1.log" 2>&1 &
pids+=("$!")

fail() {
  echo "telemetry smoke FAILED: $1" >&2
  echo "--- repltop.log ---" >&2
  cat "$SMOKE_DIR/repltop.log" >&2
  echo "--- node0.log (tail) ---" >&2
  tail -20 "$SMOKE_DIR/node0.log" >&2
  echo "--- node1.log (tail) ---" >&2
  tail -20 "$SMOKE_DIR/node1.log" >&2
  exit 1
}

wait "$top_pid"
top_status=$?
pids=("${pids[@]:1}")
[ "$top_status" -eq 0 ] || fail "repltop exited with status $top_status"

# The snapshot must be JSON that names both publishers and both sites.
for needle in '"site0"' '"site1"' '"sites"' '"protocols"'; do
  grep -q -- "$needle" "$SMOKE_DIR/repltop.json" \
    || fail "repltop.json missing $needle"
done

cleanup
trap - EXIT
echo "telemetry smoke OK ($(wc -c <"$SMOKE_DIR/repltop.json") bytes of snapshot)"
