#!/usr/bin/env bash
# Crash-recovery smoke: one traced replbench cluster per protocol runs
# over per-site write-ahead redo logs while a seeded fault schedule cuts
# a partition and crashes a site (docs/DURABILITY.md, docs/FAULTS.md).
# The crash is honest — the site's heap dies and the restart rebuilds the
# engine from its log — so the run must show, in the -json counters:
# redo records appended AND fsynced, exactly one crash and one restart,
# and a nonzero number of records replayed by recovery.
#
# Artifacts (per-protocol JSON reports, traces, the redo logs themselves)
# land in $SMOKE_DIR (default: a temp dir, kept on failure so CI can
# upload it).
set -u -o pipefail

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/recovery-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"
PROTOS="${PROTOS:-dagt backedge}"

echo "recovery smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/replbench" ./cmd/replbench || exit 1

fail() {
  echo "recovery smoke FAILED ($1): $2" >&2
  echo "--- $1.err (tail) ---" >&2
  tail -20 "$SMOKE_DIR/$1.err" >&2
  exit 1
}

# Sums every labeled counter matching the given name in a -json report
# (keys look like "repl_wal_appends_total{site=\"4\"}": 866).
sum_counter() {
  grep -o "\"$2[^:]*: [0-9]*" "$SMOKE_DIR/$1.json" \
    | awk -F': ' '{s+=$2} END {print s+0}'
}

for proto in $PROTOS; do
  "$SMOKE_DIR/replbench" \
    -trace "$SMOKE_DIR/$proto.jsonl" -traceproto "$proto" -json \
    -wal -waldir "$SMOKE_DIR/wal-$proto" \
    -faultdrop 0.05 -faultdup 0.02 -faultdelay 0.05 -reliable -chaossched \
    >"$SMOKE_DIR/$proto.json" 2>"$SMOKE_DIR/$proto.err" \
    || fail "$proto" "replbench exited with status $?"

  appends=$(sum_counter "$proto" repl_wal_appends_total)
  fsyncs=$(sum_counter "$proto" repl_wal_fsyncs_total)
  crashes=$(sum_counter "$proto" repl_fault_crashes_total)
  restarts=$(sum_counter "$proto" repl_fault_restarts_total)
  replayed=$(sum_counter "$proto" repl_wal_replayed_total)

  [ "$appends" -gt 0 ] || fail "$proto" "no WAL appends — redo logging inert?"
  [ "$fsyncs" -gt 0 ] || fail "$proto" "no WAL fsyncs — group commit inert?"
  [ "$crashes" -ge 1 ] || fail "$proto" "schedule crashed no site"
  [ "$restarts" -ge 1 ] || fail "$proto" "crashed site never restarted"
  [ "$replayed" -gt 0 ] || fail "$proto" "restart replayed no redo records — recovery inert?"

  echo "recovery smoke [$proto] OK: appends=$appends fsyncs=$fsyncs crashes=$crashes restarts=$restarts replayed=$replayed"
done

echo "recovery smoke OK"
