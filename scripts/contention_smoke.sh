#!/usr/bin/env bash
# Contention-observatory smoke: a seeded Zipfian hotspot run through
# `replbench -contend` must produce a non-empty per-item heat table, a
# fully classified abort breakdown (no `unknown` root cause), and a
# trace that `replexplain` turns into a critical-path profile whose
# segments cover the measured end-to-end commit latency within 5%
# (docs/OBSERVABILITY.md, "Contention observatory"). A second run with
# the same seed must emit a byte-identical wait-for snapshot.
#
# Artifacts (traces, wait-for dumps, reports, logs) land in $SMOKE_DIR
# (default: a temp dir, kept on failure so CI can upload it).
set -u -o pipefail

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/contention-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"

# The hotspot: Zipf s=1.5 concentrates the Table 1 traffic on a hot
# set, so the 50ms deadlock timeout fires and the heat table has teeth.
SEED=11
SKEW=1.5
PROTO=backedge

echo "contention smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/replbench" ./cmd/replbench || exit 1
go build -o "$SMOKE_DIR/replexplain" ./cmd/replexplain || exit 1

fail() {
  echo "contention smoke FAILED: $1" >&2
  for log in run1.log run2.log; do
    if [ -s "$SMOKE_DIR/$log" ]; then
      echo "--- $log (tail) ---" >&2
      tail -20 "$SMOKE_DIR/$log" >&2
    fi
  done
  exit 1
}

run() { # run N -> run$N.jsonl, wf$N.jsonl, report$N.json
  "$SMOKE_DIR/replbench" -trace "$SMOKE_DIR/run$1.jsonl" -traceproto "$PROTO" \
    -contend -skew "$SKEW" -seed "$SEED" -waitfor "$SMOKE_DIR/wf$1.jsonl" -json \
    >"$SMOKE_DIR/report$1.json" 2>"$SMOKE_DIR/run$1.log" \
    || fail "replbench run $1 exited nonzero"
}
run 1
run 2

# Non-empty heat table: every heat entry carries an "acquired" count.
grep -q '"acquired"' "$SMOKE_DIR/report1.json" \
  || fail "heat table is empty (no \"acquired\" in report1.json)"

# Aborts happened (a Zipf-1.5 hotspot always trips the 50ms timeout)
# and every one of them classified: no `unknown` root cause anywhere.
grep -q '"aborts"' "$SMOKE_DIR/report1.json" \
  || fail "no abort breakdown in report1.json (hotspot produced zero aborts?)"
grep -q '"unknown"' "$SMOKE_DIR/report1.json" \
  && fail "unclassified aborts in report1.json"

# Byte-identical wait-for snapshots across same-seed runs.
cmp -s "$SMOKE_DIR/wf1.jsonl" "$SMOKE_DIR/wf2.jsonl" \
  || fail "wait-for snapshots differ between same-seed runs"

# replexplain must parse the trace + snapshot into a profile...
"$SMOKE_DIR/replexplain" -waitfor "$SMOKE_DIR/wf1.jsonl" -json \
  "$SMOKE_DIR/run1.jsonl" >"$SMOKE_DIR/explain1.json" 2>>"$SMOKE_DIR/run1.log" \
  || fail "replexplain exited nonzero"
grep -q '"critical_paths"' "$SMOKE_DIR/explain1.json" \
  || fail "no critical_paths in explain1.json"

# ...whose span tree is well-formed...
"$SMOKE_DIR/replexplain" -verify "$SMOKE_DIR/run1.jsonl" \
  >>"$SMOKE_DIR/run1.log" 2>&1 \
  || fail "replexplain -verify found span invariant violations"

# ...and whose segments cover end-to-end commit latency within 5%.
coverage=$(awk '
  match($0, /"end_to_end_ns": [0-9]+/)  { e2e  = substr($0, RSTART+17, RLENGTH-17) }
  match($0, /"attributed_ns": [0-9]+/)  { attr = substr($0, RSTART+17, RLENGTH-17) }
  END {
    if (e2e+0 == 0) { print "no-e2e"; exit }
    printf "%.2f", 100*attr/e2e
  }' "$SMOKE_DIR/explain1.json")
case "$coverage" in
  no-e2e|"") fail "explain1.json has no end-to-end latency" ;;
esac
awk -v c="$coverage" 'BEGIN { exit !(c >= 95 && c <= 105) }' \
  || fail "critical-path coverage $coverage% outside [95%,105%]"

echo "contention smoke OK (coverage ${coverage}%, $(wc -c <"$SMOKE_DIR/wf1.jsonl") bytes of wait-for snapshot)"
