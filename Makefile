# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check chaos lint cover bench bench-smoke telemetry-smoke recovery-smoke contention-smoke freshness-smoke fuzz experiments shapes examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded chaos suite (docs/FAULTS.md): every engine over the
# reliable-delivery sublayer and the fault injector, under the race
# detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestReliable|TestBackEdgeRecovers' -count 1 ./internal/cluster ./internal/comm ./internal/core ./internal/fault

# The repository's own analyzer suite (docs/STATIC_ANALYSIS.md): five
# protocol-invariant checks that go vet cannot express.
lint:
	$(GO) run ./cmd/repllint ./...

# The pre-merge gate: compile, static checks, full test suite, the race
# detector, the chaos suite, the protocol-invariant lint, the
# crash-recovery, contention- and freshness-observatory smokes, and the
# benchmark smoke gate.
check: build vet test race chaos lint recovery-smoke contention-smoke freshness-smoke bench-smoke

cover:
	$(GO) test -cover ./...

# One benchmark iteration per paper artifact plus the micro-benchmarks.
bench:
	$(GO) test -run NONE -bench . -benchmem -benchtime 1x ./...

# Benchmark observatory (docs/BENCHMARKING.md): run the smoke suite with
# pprof capture into $(BENCH_DIR), then gate the fresh snapshot against
# the committed BENCH_smoke.json baseline. Thresholds here are wide —
# CI runners and loaded laptops are noisy; the tool's defaults are for
# deliberate same-machine before/after comparisons.
BENCH_DIR ?= bench-artifacts
bench-smoke:
	mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/replbench -suite smoke -telemetry -wal -benchjson $(BENCH_DIR)/BENCH_smoke.json -pprofdir $(BENCH_DIR)/pprof
	$(GO) run ./cmd/replbench -compare BENCH_smoke.json \
		-threshold 50 -latthreshold 400 -allocthreshold 100 -abortthreshold 25 -stalethreshold 25 \
		$(BENCH_DIR)/BENCH_smoke.json

# Cluster telemetry plane smoke (docs/OBSERVABILITY.md): two replnode
# processes stream telemetry over TCP to one repltop aggregator, whose
# -once -json snapshot must name both processes and their sites.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# Crash-recovery smoke (docs/DURABILITY.md): traced clusters run over
# per-site redo logs while a seeded schedule crashes a site; the -json
# counters must show the crash, the restart, and a nonzero redo replay.
recovery-smoke:
	./scripts/recovery_smoke.sh

# Contention-observatory smoke (docs/OBSERVABILITY.md): a seeded Zipfian
# hotspot run through `replbench -contend` must yield a non-empty heat
# table, a fully classified abort breakdown, a replexplain profile
# covering end-to-end latency within 5%, and byte-identical wait-for
# snapshots across same-seed runs.
contention-smoke:
	./scripts/contention_smoke.sh

# Freshness-observatory smoke (docs/OBSERVABILITY.md): a seeded lazy run
# through `replbench -fresh` must yield non-empty propagation waterfalls,
# certificate coverage of at least 95% of reads, stale certificates, and
# byte-identical canonical freshness summaries across same-seed runs.
freshness-smoke:
	./scripts/freshness_smoke.sh

FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz FuzzCompareTotalOrder -fuzztime $(FUZZTIME) ./internal/ts
	$(GO) test -fuzz FuzzTimestampCompare -fuzztime $(FUZZTIME) ./internal/ts
	$(GO) test -fuzz FuzzBackedgeComputation -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -fuzz FuzzReliableReorder -fuzztime $(FUZZTIME) ./internal/comm
	$(GO) test -fuzz FuzzWALDecode -fuzztime $(FUZZTIME) ./internal/wal

# Regenerate every figure/table of the paper's evaluation (§5).
experiments:
	$(GO) run ./cmd/replbench -exp all -scale medium

# Mechanically assert the paper's shape claims (takes several minutes).
shapes:
	REPRO_SHAPES=1 $(GO) test ./internal/harness -run TestPaperShapes -v -timeout 30m

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/anomaly
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/telecom

clean:
	$(GO) clean ./...
