// Command replnode runs ONE site of the replicated database over real TCP
// sockets — the multi-process deployment the paper's prototype used (§5:
// DataBlitz instances communicating through sockets). Start one process
// per site with identical -sites/-items/-seed flags (so every node derives
// the same data placement) and distinct -site values:
//
//	replnode -site 0 -peers 0=:7700,1=:7701,2=:7702 -protocol backedge
//	replnode -site 1 -peers 0=:7700,1=:7701,2=:7702 -protocol backedge
//	replnode -site 2 -peers 0=:7700,1=:7701,2=:7702 -protocol backedge
//
// Each node waits for its peers, runs its local client threads, drains,
// and prints its report.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/watch"
	"repro/internal/workload"
)

func main() {
	var (
		site     = flag.Int("site", -1, "this node's site id (0..m-1)")
		peers    = flag.String("peers", "", "comma-separated id=host:port for EVERY site")
		proto    = flag.String("protocol", "backedge", "psl|dagwt|dagt|backedge")
		items    = flag.Int("items", 200, "number of items (same on all nodes)")
		seed     = flag.Int64("seed", 1, "placement seed (same on all nodes)")
		r        = flag.Float64("r", 0.2, "replication probability")
		s        = flag.Float64("s", 0.5, "site probability")
		b        = flag.Float64("b", 0.2, "backedge probability")
		threads  = flag.Int("threads", 3, "client threads at this site")
		txns     = flag.Int("txns", 100, "transactions per thread")
		readOp   = flag.Float64("readop", 0.7, "read operation probability")
		readTxn  = flag.Float64("readtxn", 0.5, "read transaction probability")
		opCost   = flag.Duration("opcost", 200*time.Microsecond, "simulated per-operation CPU cost")
		drain    = flag.Duration("drain", 3*time.Second, "time to keep serving after local threads finish")
		obsAddr  = flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		reliable = flag.Bool("reliable", false, "run the reliable-delivery sublayer over TCP (must match on every node); survives killed connections without message loss or reorder")
		watchOn  = flag.Bool("watch", false, "run the liveness watchdog on this node: queue/epoch/pending-2PC stall alerts on /metrics (with -obs) and in the exit summary")
		flight   = flag.String("flightdump", "", "with -watch: directory for flight-recorder JSONL dumps written when an alert fires")
		telAddr  = flag.String("telemetry", "", "stream telemetry (metrics deltas, span events, phase latencies, alerts) to an aggregator at this address (see cmd/repltop -listen)")
		telProc  = flag.String("telemetry-proc", "", "process name announced to the aggregator (default site<N>)")
		walDir   = flag.String("waldir", "", "write-ahead redo log directory for this site (docs/DURABILITY.md); restarting the process with the same directory recovers from snapshot + redo replay")
		walFlush = flag.Duration("walflush", time.Millisecond, "with -waldir: group-commit flush window (0 = fsync inline on every commit)")
	)
	flag.Parse()

	addrs, err := parsePeers(*peers)
	if err != nil {
		fatal(err)
	}
	if *site < 0 || *site >= len(addrs) {
		fatal(fmt.Errorf("-site %d out of range for %d peers", *site, len(addrs)))
	}
	protocol, err := core.ParseProtocol(*proto)
	if err != nil {
		fatal(err)
	}

	wl := workload.Default()
	wl.Sites = len(addrs)
	wl.Items = *items
	wl.Seed = *seed
	wl.ReplicationProb = *r
	wl.SiteProb = *s
	wl.BackedgeProb = *b
	wl.ThreadsPerSite = *threads
	wl.TxnsPerThread = *txns
	wl.ReadOpProb = *readOp
	wl.ReadTxnProb = *readTxn

	placement, err := wl.GeneratePlacement()
	if err != nil {
		fatal(err)
	}
	g := graph.FromPlacement(placement)
	order := make([]model.SiteID, wl.Sites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	backs := graph.OrderBackedges(g, order)
	gdag := g.Without(backs)
	switch protocol {
	case core.DAGWT, core.DAGT:
		if len(backs) > 0 {
			fatal(fmt.Errorf("%v needs a DAG copy graph; this placement has %d backedges (set -b 0)", protocol, len(backs)))
		}
	}
	tree := graph.BuildChain(order)
	backSet := make(map[graph.Edge]bool)
	for _, e := range backs {
		backSet[e] = true
	}

	core.RegisterPayloads()
	tcp, err := comm.NewTCPTransport(model.SiteID(*site), addrs)
	if err != nil {
		fatal(err)
	}
	// The engines speak to tr; with -reliable that is the exactly-once FIFO
	// sublayer (sequence numbers, retransmission, dedup) wrapped around the
	// sockets, so a dropped TCP connection costs a reconnect and some
	// retransmits instead of lost protocol messages. Closing tr closes the
	// sockets too.
	var tr comm.Transport = tcp
	var rel *comm.Reliable
	if *reliable {
		comm.RegisterReliablePayloads()
		rel = comm.NewReliable(tcp, comm.ReliableConfig{})
		tr = rel
	}
	defer tr.Close()

	collector := metrics.NewCollector(false)
	params := core.DefaultParams()
	params.OpCost = *opCost

	// Live observability: a registry the engine and transport feed, served
	// over HTTP for scraping and ad-hoc inspection while the node runs.
	// The telemetry publisher streams the same registry, so -telemetry
	// alone also brings it up (without the HTTP server).
	var registry *obs.Registry
	if *obsAddr != "" || *telAddr != "" {
		registry = obs.NewRegistry()
		registry.Gauge("repl_protocol_info",
			obs.Label{Key: "protocol", Value: protocol.String()}).Set(1)
		tcp.SetStats(obs.NewCommStats(registry))
		if rel != nil {
			rel.SetStats(obs.NewReliableStats(registry))
		}
	}
	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fatal(fmt.Errorf("-obs listen: %w", err))
		}
		srv := &http.Server{Handler: registry.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "replnode: obs server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("replnode: site %d observability on http://%s/metrics\n", *site, ln.Addr())
	}

	// The watchdog on a node watches what the node can see: its own
	// queues, epoch progress, and prepared-but-undecided 2PC entries.
	// Cross-site staleness needs both ends of an edge in one event stream,
	// so its deadline is pushed out of reach — a forward to a peer is
	// applied in the peer's process, invisible here.
	var watchdog *watch.Watchdog
	var rec *trace.Recorder
	if *watchOn || *flight != "" || *telAddr != "" {
		rec = trace.NewRecorder()
		if rel != nil {
			rel.SetTrace(rec)
		}
	}
	if *watchOn || *flight != "" {
		watchdog = watch.New(watch.Options{
			StalenessDeadline: 24 * time.Hour,
			FlightDir:         *flight,
		})
		watchdog.SetObs(registry)
		watchdog.SetTrace(rec)
		rec.AddSink(watchdog.Ingest)
	}

	// The telemetry publisher ships this node's registry deltas, span
	// events, phase latencies and watchdog alerts to a cluster
	// aggregator (cmd/repltop), which re-federates what the per-node
	// watchdog above cannot see: cross-process staleness and span trees.
	var publisher *telemetry.Publisher
	if *telAddr != "" {
		proc := *telProc
		if proc == "" {
			proc = fmt.Sprintf("site%d", *site)
		}
		publisher, err = telemetry.NewPublisher(telemetry.Options{Proc: proc, Addr: *telAddr})
		if err != nil {
			fatal(err)
		}
		publisher.SetObs(registry)
		publisher.SetWatch(watchdog)
		publisher.SetReport(func() metrics.Report { return collector.Snapshot(1) })
		publisher.Announce(protocol.String(), []model.SiteID{model.SiteID(*site)})
		rec.AddSink(publisher.Ingest)
	}

	shared := &core.SharedConfig{
		Placement:    placement,
		Graph:        gdag,
		Order:        order,
		Tree:         tree,
		SubtreeItems: graph.SubtreeCopyItems(tree, placement),
		Backedges:    backSet,
		Params:       params,
		Metrics:      collector,
		Obs:          registry,
		Trace:        rec,
		Watch:        watchdog,
	}

	// With -waldir the node is durable: every commit is redo-logged with
	// group commit before it is externalized, and a killed process
	// restarted on the same directory rebuilds its store, in-doubt 2PC
	// entries, and propagation obligations from snapshot + replay (peers
	// retransmit whatever was never acknowledged when -reliable is on).
	if *walDir != "" {
		lg, err := wal.Open(*walDir, wal.Options{
			Site:          model.SiteID(*site),
			FlushInterval: *walFlush,
			Items:         placement.CopiesAt(model.SiteID(*site)),
			Obs:           registry,
			Trace:         rec,
		})
		if err != nil {
			fatal(err)
		}
		defer lg.Close()
		shared.WALs = map[model.SiteID]*wal.SiteLog{model.SiteID(*site): lg}
		fmt.Printf("replnode: site %d redo log in %s (incarnation %d)\n",
			*site, *walDir, lg.Incarnation())
	}
	engine, err := core.New(protocol, shared, model.SiteID(*site), tr)
	if err != nil {
		fatal(err)
	}
	// Contention observatory wiring (docs/OBSERVABILITY.md): a node sees
	// one site, so it ships that site's heat table and abort breakdown
	// each publish cycle (the aggregator merges across processes) and
	// dumps its local wait-for snapshot when a contention alert fires.
	type contender interface {
		LockHeat() []lock.ItemStats
		LockWaitGraph() []lock.WaitEdge
		AbortReasons() map[string]uint64
	}
	ce := engine.(contender)
	if watchdog != nil {
		watchdog.RegisterWaitGraphs(func() []contend.SiteWaitGraph {
			return []contend.SiteWaitGraph{{Site: model.SiteID(*site), Edges: ce.LockWaitGraph()}}
		})
	}
	if publisher != nil {
		publisher.SetContention(
			func() []contend.HeatEntry {
				sh := []contend.SiteHeat{{Site: model.SiteID(*site), Items: ce.LockHeat()}}
				return contend.BuildHeat(sh, 32)
			},
			ce.AbortReasons,
		)
	}
	engine.Start()
	defer engine.Stop()
	watchdog.Start()
	defer watchdog.Stop()
	publisher.Start()
	defer publisher.Stop()

	fmt.Printf("replnode: site %d of %d listening on %s (%v, %d backedges in graph)\n",
		*site, wl.Sites, tcp.Addr(), protocol, len(backs))
	waitForPeers(addrs, model.SiteID(*site))

	collector.Begin()
	var wg sync.WaitGroup
	for th := 0; th < wl.ThreadsPerSite; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			gen := workload.NewTxnGen(wl, placement, model.SiteID(*site), wl.Seed+int64(*site)*1000+int64(th)+7)
			for i := 0; i < wl.TxnsPerThread; i++ {
				_ = engine.Execute(gen.Next()) // aborts are counted in the report
			}
		}(th)
	}
	wg.Wait()
	collector.End()
	fmt.Printf("replnode: site %d local threads done; draining %v\n", *site, *drain)
	time.Sleep(*drain)
	fmt.Printf("replnode: site %d report: %v\n", *site, collector.Snapshot(1))
	if watchdog != nil {
		s := watchdog.Summarize()
		fmt.Printf("replnode: site %d watch: raised=%v active=%d flight_dumps=%d\n",
			*site, s.AlertsRaised, s.ActiveAlerts, len(s.FlightDumps))
	}
}

func parsePeers(spec string) (map[model.SiteID]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-peers is required (e.g. 0=:7700,1=:7701)")
	}
	out := make(map[model.SiteID]string)
	for _, part := range strings.Split(spec, ",") {
		var id int
		var addr string
		if n, err := fmt.Sscanf(part, "%d=%s", &id, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("bad peer spec %q", part)
		}
		if !strings.Contains(addr, ":") {
			return nil, fmt.Errorf("peer address %q must be host:port", addr)
		}
		out[model.SiteID(id)] = addr
	}
	for i := 0; i < len(out); i++ {
		if _, ok := out[model.SiteID(i)]; !ok {
			return nil, fmt.Errorf("peer ids must be contiguous from 0; missing %d", i)
		}
	}
	return out, nil
}

// waitForPeers blocks until every other site accepts TCP connections, so
// no protocol message is lost to a not-yet-listening peer.
func waitForPeers(addrs map[model.SiteID]string, self model.SiteID) {
	for id, addr := range addrs {
		if id == self {
			continue
		}
		for {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				c.Close()
				break
			}
			fmt.Printf("replnode: waiting for site %d at %s\n", id, addr)
			time.Sleep(500 * time.Millisecond)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replnode:", err)
	os.Exit(1)
}
