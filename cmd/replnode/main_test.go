package main

import (
	"testing"

	"repro/internal/model"
)

func TestParsePeers(t *testing.T) {
	addrs, err := parsePeers("0=127.0.0.1:7700,1=127.0.0.1:7701,2=host:99")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[0] != "127.0.0.1:7700" || addrs[2] != "host:99" {
		t.Errorf("addrs = %v", addrs)
	}
	_ = addrs[model.SiteID(1)]
}

func TestParsePeersErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"0=only-no-id",        // malformed entry
		"1=127.0.0.1:7700",    // ids not contiguous from 0
		"0=:7700,2=:7702",     // gap
		"zero=127.0.0.1:7700", // non-numeric id
	}
	for _, in := range cases {
		if _, err := parsePeers(in); err == nil {
			t.Errorf("parsePeers(%q) accepted", in)
		}
	}
}
