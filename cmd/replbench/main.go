// Command replbench regenerates the paper's evaluation (§5): it runs any
// of the registered experiments and prints the figure's series as a text
// table (or CSV for plotting).
//
// Usage:
//
//	replbench -list
//	replbench -exp fig2a -scale medium
//	replbench -exp fig3a -scale full -csv > fig3a.csv
//	replbench -exp all -scale quick
//	replbench -trace run.jsonl -traceproto dagt -watch -spans run.perfetto.json
//	replbench -suite smoke -benchjson BENCH_smoke.json -pprofdir bench-profiles
//	replbench -compare BENCH_baseline.json BENCH_new.json
//
// Scales: quick (seconds per point), medium (default), full (the paper's
// 1000 transactions per thread — expect a long run).
//
// The -suite runner emits a versioned BenchSnapshot (docs/BENCHMARKING.md)
// and -compare is the regression gate: it exits nonzero when the new
// snapshot regressed past the thresholds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fresh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/watch"
	"repro/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment name (see -list), or 'all'")
		scale   = flag.String("scale", "medium", "workload scale: quick|medium|full")
		latency = flag.Duration("latency", 0, "override network latency (default 150µs)")
		seed    = flag.Int64("seed", 0, "override workload RNG seed")
		tree    = flag.Bool("tree", false, "use the general (bushy) propagation tree instead of the chain")
		minBack = flag.Bool("minbackedges", false, "compute the backedge set with the §4.2 weighted FAS heuristic (implies -tree)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a table")
		plot    = flag.Bool("plot", false, "additionally render each figure as an ASCII chart")
		verify  = flag.Bool("verify", false, "record and check serializability for every point (slower)")
		list    = flag.Bool("list", false, "list experiments and exit")
		stats   = flag.Bool("stats", false, "print placement statistics for the Table 1 default configuration and exit")

		traceOut   = flag.String("trace", "", "run one traced cluster and write its propagation events to this JSONL file")
		traceProto = flag.String("traceproto", "backedge", "protocol for the -trace run: psl|dagwt|dagt|backedge")
		traceSum   = flag.String("tracesummary", "", "summarize a JSONL trace file: per-protocol p50/p95/max propagation delay")
		traceSkew  = flag.Float64("skew", 0, "with -trace: Zipf item-access skew (0 = the paper's uniform draw, >1 = Zipf s concentrating traffic on a hot set; pairs with -contend)")
		jsonOut    = flag.Bool("json", false, "with -trace: print the run's metrics report as JSON; with -exp: print every point as a JSON array instead of tables")

		faultDrop  = flag.Float64("faultdrop", 0, "with -trace: per-message drop probability injected under the engines")
		faultDup   = flag.Float64("faultdup", 0, "with -trace: per-message duplication probability")
		faultDelay = flag.Float64("faultdelay", 0, "with -trace: per-message extra-delay probability (0.5ms-3ms holds)")
		faultSeed  = flag.Int64("faultseed", 1, "seed rooting the fault injector's per-edge decision streams and the -chaossched schedule")
		reliable   = flag.Bool("reliable", false, "with -trace: wrap the network in the reliable-delivery sublayer (required when faults drop messages)")
		chaosSched = flag.Bool("chaossched", false, "with -trace: play a seeded partition-and-heal plus crash-and-restart schedule during the run (implies -reliable semantics; see docs/FAULTS.md)")

		walOn    = flag.Bool("wal", false, "with -trace or -suite: run every site over a per-site write-ahead redo log (docs/DURABILITY.md); with -chaossched the scheduled crash is honest — the site loses its heap and restarts from its log")
		walDir   = flag.String("waldir", "", "with -trace: like -wal, but keep the per-site redo logs under this directory (implies -wal)")
		walFlush = flag.Duration("walflush", time.Millisecond, "with -wal: group-commit flush window (0 = fsync inline on every commit)")

		spansOut  = flag.String("spans", "", "with -trace: also write the run as Chrome/Perfetto trace-event JSON to this file (open at ui.perfetto.dev; see docs/OBSERVABILITY.md)")
		watchOn   = flag.Bool("watch", false, "with -trace: run the staleness/liveness watchdog during the run and report its summary (a 'watch' block under -json)")
		flightDir = flag.String("flightdump", "", "with -trace: directory for the watchdog's flight-recorder JSONL dumps on alert (implies -watch)")

		contendOn  = flag.Bool("contend", false, "with -trace: report the contention observatory — top-K item heat, abort root-cause breakdown, final wait-for snapshot, and span critical-path attribution (a 'contention' block under -json; see docs/OBSERVABILITY.md)")
		topK       = flag.Int("topk", 16, "with -contend: heat table size")
		waitforOut = flag.String("waitfor", "", "with -contend: write the on-demand wait-for graph snapshot as JSONL to this file (readable by replexplain)")

		freshOn  = flag.Bool("fresh", false, "with -trace: report the freshness observatory — propagation waterfalls, replica staleness distributions, read-freshness certificates (a 'freshness' block under -json; see docs/OBSERVABILITY.md)")
		freshSum = flag.String("freshsummary", "", "with -fresh: write the canonical (same-seed byte-stable) freshness summary to this file (implies -fresh)")

		suite     = flag.String("suite", "", "run a benchmark suite (smoke|medium|full) and print/emit a BenchSnapshot")
		benchJSON = flag.String("benchjson", "", "with -suite: write the BenchSnapshot to this file (conventionally BENCH_<label>.json)")
		label     = flag.String("label", "", "with -suite: snapshot label (default: the suite name)")
		pprofDir  = flag.String("pprofdir", "", "with -suite: directory receiving cpu/heap/mutex/block pprof profiles of the run")
		telemOn   = flag.Bool("telemetry", false, "with -suite: run every point with the telemetry plane attached (recorder, publisher, in-process aggregator), so the gate prices its overhead")
		compare   = flag.String("compare", "", "regression gate: compare this baseline BenchSnapshot against the new one given as the positional argument; exits 1 on regression")
		thrPct    = flag.Float64("threshold", 10, "with -compare: max tolerated throughput drop, percent")
		latPct    = flag.Float64("latthreshold", 30, "with -compare: max tolerated latency growth (p50/p95/p99 response, p95 prop), percent")
		allocPct  = flag.Float64("allocthreshold", 50, "with -compare: max tolerated allocs/bytes-per-txn growth, percent")
		abortPts  = flag.Float64("abortthreshold", 5, "with -compare: max tolerated abort-rate growth, absolute percentage points")
		stalePts  = flag.Float64("stalethreshold", 5, "with -compare: max tolerated stale-read-rate growth, absolute percentage points (freshness block, schema v3)")
	)
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-compare needs the new snapshot as the positional argument: replbench -compare old.json new.json"))
		}
		runCompare(*compare, flag.Arg(0), bench.Thresholds{
			ThroughputPct: *thrPct, LatencyPct: *latPct, AllocPct: *allocPct,
			AbortPts: *abortPts, StalePts: *stalePts,
		})
		return
	}
	if *suite != "" {
		if err := runSuite(*suite, *label, *benchJSON, *pprofDir, *telemOn, *walOn); err != nil {
			fatal(err)
		}
		return
	}
	if *benchJSON != "" || *pprofDir != "" || *label != "" {
		fatal(fmt.Errorf("-benchjson/-pprofdir/-label only apply to a -suite run"))
	}

	if *stats {
		printStats(*seed)
		return
	}

	if *traceSum != "" {
		if err := summarizeTrace(*traceSum); err != nil {
			fatal(err)
		}
		return
	}
	if *traceOut != "" {
		fo := faultOptions{
			Drop: *faultDrop, Dup: *faultDup, Delay: *faultDelay,
			Seed: *faultSeed, Reliable: *reliable, Schedule: *chaosSched,
		}
		wo := watchOptions{
			Enable: *watchOn || *flightDir != "", FlightDir: *flightDir, Spans: *spansOut,
		}
		wa := walOptions{Enable: *walOn || *walDir != "", Dir: *walDir, Flush: *walFlush}
		co := contendOptions{Enable: *contendOn || *waitforOut != "", TopK: *topK, WaitFor: *waitforOut}
		fr := freshOptions{Enable: *freshOn || *freshSum != "", Summary: *freshSum}
		if err := runTraced(*traceOut, *traceProto, *seed, *traceSkew, *jsonOut, fo, wo, wa, co, fr); err != nil {
			fatal(err)
		}
		return
	}
	if *freshOn || *freshSum != "" {
		fatal(fmt.Errorf("-fresh/-freshsummary only apply to a -trace run"))
	}
	if *traceSkew != 0 {
		fatal(fmt.Errorf("-skew only applies to a -trace run"))
	}
	if *spansOut != "" || *watchOn || *flightDir != "" {
		fatal(fmt.Errorf("-spans/-watch/-flightdump only apply to a -trace run"))
	}
	if *contendOn || *waitforOut != "" {
		fatal(fmt.Errorf("-contend/-waitfor only apply to a -trace run"))
	}
	if *walOn || *walDir != "" {
		fatal(fmt.Errorf("-wal/-waldir only apply to a -trace run"))
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range repro.Experiments() {
			fmt.Printf("  %-14s %s\n", e.Name, e.Paper)
		}
		if *exp == "" {
			fmt.Println("\nrun one with: replbench -exp <name> [-scale quick|medium|full]")
		}
		return
	}

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	opts := repro.ExperimentOptions{
		Scale:             sc,
		Latency:           *latency,
		Seed:              *seed,
		GeneralTree:       *tree,
		MinimizeBackedges: *minBack,
		Verify:            *verify,
	}

	var exps []repro.Experiment
	if *exp == "all" {
		exps = repro.Experiments()
	} else {
		e, err := repro.LookupExperiment(*exp)
		if err != nil {
			fatal(err)
		}
		exps = []repro.Experiment{e}
	}

	if *csv && *jsonOut {
		fatal(fmt.Errorf("-csv and -json are mutually exclusive for -exp runs"))
	}
	if *csv {
		fmt.Println(repro.ExperimentCSVHeader)
	}
	// expPoint is the scriptable shape of one measured sweep point: the
	// full metrics report (phase breakdown included) tagged with its
	// experiment, swept x, and protocol.
	type expPoint struct {
		Experiment string         `json:"experiment"`
		X          float64        `json:"x"`
		Protocol   string         `json:"protocol"`
		Report     metrics.Report `json:"report"`
	}
	var jsonPoints []expPoint
	for _, e := range exps {
		if e.Name == "table1" {
			if !*csv && !*jsonOut {
				fmt.Printf("== table1 — Parameter Settings (Table 1) ==\n")
				repro.PrintTable1(os.Stdout, opts)
				fmt.Println()
			}
			continue
		}
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		switch {
		case *jsonOut:
			for _, p := range res.Points {
				jsonPoints = append(jsonPoints, expPoint{
					Experiment: res.Name, X: p.X,
					Protocol: p.Protocol.String(), Report: p.Report,
				})
			}
			fmt.Fprintf(os.Stderr, "replbench: %s done in %s\n", e.Name, time.Since(start).Round(time.Second))
		case *csv:
			res.WriteCSVRows(os.Stdout)
		default:
			res.Print(os.Stdout)
			if *plot {
				res.PlotASCII(os.Stdout, 64, 16)
			}
			fmt.Printf("(%s in %s)\n\n", e.Name, time.Since(start).Round(time.Second))
		}
	}
	if *jsonOut {
		b, err := json.MarshalIndent(jsonPoints, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
	}
}

// runSuite executes a benchmark suite and emits its BenchSnapshot: to
// stdout, and to -benchjson when given; -pprofdir adds profile capture.
func runSuite(name, label, outPath, profileDir string, telemetry, withWAL bool) error {
	cfg, err := bench.Suite(name)
	if err != nil {
		return err
	}
	start := time.Now()
	snap, err := bench.RunSuite(cfg, bench.RunOptions{
		Label:      label,
		ProfileDir: profileDir,
		Telemetry:  telemetry,
		WAL:        withWAL,
		Progress: func(line string) {
			fmt.Fprintf(os.Stderr, "replbench: %s\n", line)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replbench: suite %s done in %s\n", name, time.Since(start).Round(time.Second))
	if outPath != "" {
		if err := snap.WriteFile(outPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "replbench: wrote %s\n", outPath)
		if profileDir != "" {
			fmt.Fprintf(os.Stderr, "replbench: wrote pprof profiles to %s\n", profileDir)
		}
		return nil
	}
	return snap.WriteJSON(os.Stdout)
}

// runCompare is the regression gate: diff new against the old baseline
// and exit 1 when any metric regressed past its threshold.
func runCompare(oldPath, newPath string, th bench.Thresholds) {
	oldSnap, err := bench.ReadSnapshotFile(oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := bench.ReadSnapshotFile(newPath)
	if err != nil {
		fatal(err)
	}
	deltas, regressions := bench.Compare(oldSnap, newSnap, th)
	fmt.Printf("comparing %s (%s) -> %s (%s)\n\n", oldPath, oldSnap.Label, newPath, newSnap.Label)
	bench.WriteDiff(os.Stdout, deltas, false)
	if regressions > 0 {
		fmt.Printf("\n%d regression(s) past thresholds (throughput -%.0f%%, latency +%.0f%%, allocs +%.0f%%, aborts +%.1f pts, stale reads +%.1f pts)\n",
			regressions, th.ThroughputPct, th.LatencyPct, th.AllocPct, th.AbortPts, th.StalePts)
		os.Exit(1)
	}
	fmt.Println("\nno regressions past thresholds")
}

// faultOptions carries the -fault*/-reliable/-chaossched flags into the
// traced run: a seeded fault injector under the engines, the reliable
// sublayer hiding it, and optionally a partition/crash schedule.
type faultOptions struct {
	Drop, Dup, Delay float64
	Seed             int64
	Reliable         bool
	Schedule         bool
}

func (f faultOptions) active() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Delay > 0 || f.Schedule
}

// watchOptions carries the -watch/-flightdump/-spans flags: the
// staleness/liveness watchdog riding on the traced run, and the Perfetto
// export of the recorded span stream.
type watchOptions struct {
	Enable    bool
	FlightDir string
	Spans     string
}

// walOptions carries the -wal/-waldir/-walflush flags: per-site redo
// logs under the traced cluster, so a -chaossched crash is honest.
type walOptions struct {
	Enable bool
	Dir    string
	Flush  time.Duration
}

// contendOptions carries the -contend/-topk/-waitfor flags: the
// contention observatory riding on the traced run.
type contendOptions struct {
	Enable  bool
	TopK    int
	WaitFor string
}

// freshOptions carries the -fresh/-freshsummary flags: the freshness
// observatory riding on the traced run, and the canonical (same-seed
// byte-stable) summary document the smoke gate compares.
type freshOptions struct {
	Enable  bool
	Summary string
}

// runTraced runs one short Table 1 cluster with the propagation trace
// recorder attached and writes every lifecycle event to out as JSONL.
// With jsonReport, the run's metrics report is printed as JSON instead of
// the human-readable line, so scripts can consume both artifacts; when
// fault injection or the WAL is on, the JSON also carries the
// repl_fault_*, repl_reliable_*, and repl_wal_* counters; with the
// watchdog on, a watch summary block (alert counts, max staleness,
// flight dumps).
func runTraced(out, protoName string, seed int64, skew float64, jsonReport bool, fo faultOptions, wo watchOptions, wa walOptions, co contendOptions, fr freshOptions) error {
	protocol, err := core.ParseProtocol(protoName)
	if err != nil {
		return err
	}
	if fo.Drop > 0 && !fo.Reliable {
		return fmt.Errorf("-faultdrop without -reliable: the engines assume reliable FIFO delivery and would stall on the first lost message")
	}
	wl := workload.Default()
	wl.TxnsPerThread = 100 // a traced run is a sample, not a benchmark
	if seed != 0 {
		wl.Seed = seed
	}
	wl.Skew = skew
	if !protocol.Propagates() || protocol == core.DAGWT || protocol == core.DAGT {
		// The Table 1 placement induces backedges; the DAG-only protocols
		// need them gone.
		wl.BackedgeProb = 0
	}
	rec := trace.NewRecorder()
	cfg := cluster.Config{
		Workload:         wl,
		Protocol:         protocol,
		Params:           core.DefaultParams(),
		Latency:          150 * time.Microsecond,
		TrackPropagation: true,
		Trace:            rec,
	}
	var registry *obs.Registry
	if fo.active() || fo.Reliable || wo.Enable || wa.Enable || co.Enable || fr.Enable {
		registry = obs.NewRegistry()
		cfg.Obs = registry
	}
	if wa.Enable {
		dir := wa.Dir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "replbench-wal-"); err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		cfg.WALDir = dir
		cfg.WALFlushInterval = wa.Flush
		fmt.Fprintf(os.Stderr, "replbench: per-site redo logs in %s\n", dir)
	}
	if fo.active() || fo.Reliable {
		cfg.Fault = &fault.Config{Seed: fo.Seed, Faults: fault.Faults{
			Drop: fo.Drop, Duplicate: fo.Dup, Delay: fo.Delay,
			DelayMin: 500 * time.Microsecond, DelayMax: 3 * time.Millisecond,
		}}
		cfg.Reliable = fo.Reliable
	}
	if wo.Enable {
		cfg.Watch = &watch.Options{FlightDir: wo.FlightDir}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	c.Start()
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(c.Stop) }
	defer stop()
	var player sync.WaitGroup
	if fo.Schedule {
		sched := fault.Generate(fo.Seed, wl.Sites, 2*time.Second)
		fmt.Fprintf(os.Stderr, "replbench: playing fault schedule:\n%s", sched)
		player.Add(1)
		go func() {
			defer player.Done()
			c.Fault().Play(sched)
		}()
	}
	report, err := c.Run()
	if err != nil {
		return err
	}
	player.Wait()
	// The on-demand wait-for snapshot is taken the moment the client load
	// finishes — before the quiesce drain, while secondary appliers can
	// still be parked on locks.
	var waitGraphs []contend.SiteWaitGraph
	if co.Enable {
		waitGraphs = c.WaitGraphs()
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replbench: wrote %d events to %s\n", rec.Len(), out)
	if wo.Spans != "" {
		sf, err := os.Create(wo.Spans)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(sf, rec.Snapshot()); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "replbench: wrote Perfetto trace to %s (open at ui.perfetto.dev)\n", wo.Spans)
	}
	// Stop before summarizing: Stop runs the watchdog's final tick, so the
	// summary reflects the whole run.
	stop()
	var contention *contend.Report
	if co.Enable {
		events := rec.Snapshot()
		paths := contend.AnalyzeCriticalPaths(events)
		for _, p := range paths {
			p.Protocol = core.Protocol(p.Proto).String()
		}
		contention = &contend.Report{
			Heat:       c.Heat(co.TopK),
			WaitGraphs: waitGraphs,
			Aborts:     contend.AbortBreakdown(events),
			Paths:      paths,
		}
		if co.WaitFor != "" {
			wf, err := os.Create(co.WaitFor)
			if err != nil {
				return err
			}
			if err := contend.WriteWaitGraphs(wf, waitGraphs); err != nil {
				wf.Close()
				return err
			}
			if err := wf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "replbench: wrote wait-for snapshot to %s\n", co.WaitFor)
		}
	}
	var freshness *bench.Freshness
	if fr.Enable {
		reads := countReads(registry)
		freshness = bench.FreshnessFromSummary(c.FreshSummary(), reads)
		if fr.Summary != "" {
			// The canonical document deliberately excludes every count and
			// timing: abort outcomes (and so read/apply tallies) depend on
			// wall-clock lock timeouts, but the topology, segment schema, and
			// certificate coverage are schedule-stable — two same-seed runs
			// must produce byte-identical files (the freshness smoke cmps
			// them).
			var coverage float64
			if s := c.FreshSummary(); s != nil && reads > 0 {
				coverage = 100 * float64(s.Reads()) / float64(reads)
			}
			canon := fresh.NewCanonical(protocol.String(), wl.Seed, wl.Sites,
				!protocol.Propagates(), c.PropEdges(), coverage)
			cf, err := os.Create(fr.Summary)
			if err != nil {
				return err
			}
			if err := canon.Encode(cf); err != nil {
				cf.Close()
				return err
			}
			if err := cf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "replbench: wrote canonical freshness summary to %s\n", fr.Summary)
		}
	}
	if jsonReport {
		var b []byte
		if registry != nil {
			// Fault runs also publish what the injector did and what the
			// reliable sublayer absorbed, next to the usual report; watchdog
			// runs add the liveness summary.
			counters := make(map[string]int64)
			for k, v := range registry.Snapshot() {
				if strings.HasPrefix(k, "repl_fault_") || strings.HasPrefix(k, "repl_reliable_") ||
					strings.HasPrefix(k, "repl_wal_") || strings.HasPrefix(k, "repl_lock_") {
					counters[k] = v
				}
			}
			var ws *watch.Summary
			if w := c.Watch(); w != nil {
				s := w.Summarize()
				ws = &s
			}
			b, err = json.MarshalIndent(struct {
				Report     metrics.Report   `json:"report"`
				Counters   map[string]int64 `json:"counters"`
				Watch      *watch.Summary   `json:"watch,omitempty"`
				Contention *contend.Report  `json:"contention,omitempty"`
				Freshness  *bench.Freshness `json:"freshness,omitempty"`
			}{report, counters, ws, contention, freshness}, "", "  ")
		} else {
			b, err = report.JSON()
		}
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("%v: %v\n", protocol, report)
		if registry != nil {
			var dropped, retrans, appends, replayed int64
			for k, v := range registry.Snapshot() {
				if strings.HasPrefix(k, "repl_fault_dropped_total") {
					dropped += v
				}
				if strings.HasPrefix(k, "repl_reliable_retransmits_total") {
					retrans += v
				}
				if strings.HasPrefix(k, "repl_wal_appends_total") {
					appends += v
				}
				if strings.HasPrefix(k, "repl_wal_replayed_total") {
					replayed += v
				}
			}
			fmt.Printf("faults: dropped=%d retransmits=%d\n", dropped, retrans)
			if wa.Enable {
				fmt.Printf("wal: appends=%d replayed=%d\n", appends, replayed)
			}
		}
		if w := c.Watch(); w != nil {
			s := w.Summarize()
			fmt.Printf("watch: raised=%v active=%d max_staleness=%dms flight_dumps=%d\n",
				s.AlertsRaised, s.ActiveAlerts, s.MaxStalenessMs, len(s.FlightDumps))
		}
		if contention != nil {
			fmt.Print(contention.String())
		}
		if freshness != nil {
			fmt.Printf("freshness: reads=%d fresh=%d stale=%d (%.1f%% stale, %.1f%% certified)  p95_read_lag=%dus  p95_apply_lag=%dus\n",
				freshness.Reads, freshness.ReadsFresh, freshness.ReadsStale,
				freshness.StaleReadPct, freshness.CoveragePct,
				uint64(freshness.P95ReadLagUS), uint64(freshness.P95ApplyLagUS))
			wfs := fresh.BuildWaterfalls(rec.Snapshot())
			if len(wfs) > 0 {
				fmt.Println("propagation waterfalls:")
				for _, wf := range wfs {
					wf.Protocol = core.Protocol(wf.Proto).String()
				}
				for _, l := range fresh.FormatWaterfalls(wfs) {
					fmt.Printf("  %s\n", l)
				}
			}
		}
	}
	return nil
}

// countReads sums the repl_txn_reads_total series across sites — the
// independently counted denominator of certificate coverage.
func countReads(r *obs.Registry) uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	for k, v := range r.Snapshot() {
		if strings.HasPrefix(k, "repl_txn_reads_total") && v > 0 {
			total += uint64(v)
		}
	}
	return total
}

// summarizeTrace reads a JSONL trace (possibly the concatenation of
// several runs) and prints, per protocol, the propagation-delay quantiles
// over all commit-to-apply spans.
func summarizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	delays := trace.PropDelays(events)
	if len(delays) == 0 {
		fmt.Println("no commit-to-apply spans in trace")
	} else {
		protos := make([]int, 0, len(delays))
		for p := range delays {
			protos = append(protos, int(p))
		}
		sort.Ints(protos)
		fmt.Printf("%-10s %8s %12s %12s %12s\n", "protocol", "samples", "p50", "p95", "max")
		for _, p := range protos {
			ds := delays[uint8(p)]
			fmt.Printf("%-10s %8d %12s %12s %12s\n",
				core.Protocol(p), len(ds),
				trace.Quantile(ds, 0.50).Round(time.Microsecond),
				trace.Quantile(ds, 0.95).Round(time.Microsecond),
				trace.Quantile(ds, 1).Round(time.Microsecond))
		}
	}
	summarizePhases(events)
	summarizeContention(events)
	summarizeFreshness(events)
	return nil
}

// summarizeFreshness adds the freshness observatory's trace-derived views
// to -tracesummary: per-(protocol, edge) propagation waterfalls joined
// from the lifecycle spans and phase events, and the read-freshness
// certificate tallies (docs/OBSERVABILITY.md).
func summarizeFreshness(events []trace.Event) {
	wfs := fresh.BuildWaterfalls(events)
	if len(wfs) > 0 {
		for _, wf := range wfs {
			wf.Protocol = core.Protocol(wf.Proto).String()
		}
		fmt.Printf("\npropagation waterfalls:\n")
		for _, l := range fresh.FormatWaterfalls(wfs) {
			fmt.Printf("  %s\n", l)
		}
	}
	type tally struct {
		fresh, stale int
		behind       []time.Duration
	}
	byProto := make(map[uint8]*tally)
	for _, ev := range events {
		if ev.Kind != trace.ReadCertificate {
			continue
		}
		t := byProto[ev.Proto]
		if t == nil {
			t = &tally{}
			byProto[ev.Proto] = t
		}
		if ev.Phase == "stale" {
			t.stale++
			t.behind = append(t.behind, time.Duration(ev.Dur))
		} else {
			t.fresh++
		}
	}
	if len(byProto) == 0 {
		return
	}
	protos := make([]int, 0, len(byProto))
	for p := range byProto {
		protos = append(protos, int(p))
	}
	sort.Ints(protos)
	fmt.Printf("\nread-freshness certificates:\n")
	fmt.Printf("%-10s %8s %8s %8s %12s %12s\n", "protocol", "reads", "fresh", "stale", "p95 behind", "max behind")
	for _, p := range protos {
		t := byProto[uint8(p)]
		fmt.Printf("%-10s %8d %8d %8d %12s %12s\n",
			core.Protocol(p), t.fresh+t.stale, t.fresh, t.stale,
			trace.Quantile(t.behind, 0.95).Round(time.Microsecond),
			trace.Quantile(t.behind, 1).Round(time.Microsecond))
	}
}

// summarizeContention adds the contention observatory's trace-derived
// views to -tracesummary: the abort root-cause breakdown and the
// per-protocol critical-path profiles (docs/OBSERVABILITY.md).
func summarizeContention(events []trace.Event) {
	if aborts := contend.AbortBreakdown(events); len(aborts) > 0 {
		fmt.Printf("\naborts by root cause:\n")
		for _, l := range contend.FormatAborts(aborts) {
			fmt.Printf("  %s\n", l)
		}
	}
	paths := contend.AnalyzeCriticalPaths(events)
	if len(paths) == 0 {
		return
	}
	fmt.Printf("\ncommit critical paths:\n")
	for _, p := range paths {
		p.Protocol = core.Protocol(p.Proto).String()
		for _, l := range contend.FormatProfile(p) {
			fmt.Printf("  %s\n", l)
		}
	}
}

// summarizePhases aggregates the span-less PhaseLatency events that the
// engines emit alongside their lifecycle spans and prints per-phase
// latency quantiles, giving traces the same phase-attribution view the
// in-process metrics Report carries.
func summarizePhases(events []trace.Event) {
	byPhase := make(map[string][]time.Duration)
	for _, ev := range events {
		if ev.Kind == trace.PhaseLatency && ev.Phase != "" {
			byPhase[ev.Phase] = append(byPhase[ev.Phase], time.Duration(ev.Dur))
		}
	}
	if len(byPhase) == 0 {
		return
	}
	names := make([]string, 0, len(byPhase))
	for n := range byPhase {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\nphase latency attribution:\n")
	fmt.Printf("%-14s %8s %12s %12s %12s\n", "phase", "samples", "p50", "p95", "max")
	for _, n := range names {
		ds := byPhase[n]
		fmt.Printf("%-14s %8d %12s %12s %12s\n",
			n, len(ds),
			trace.Quantile(ds, 0.50).Round(time.Microsecond),
			trace.Quantile(ds, 0.95).Round(time.Microsecond),
			trace.Quantile(ds, 1).Round(time.Microsecond))
	}
}

// printStats shows how the §5.2 data-distribution scheme behaves at the
// sweep endpoints — the counts the paper reasons with in §5.3 (e.g.
// "at r=1, there are almost 500 replicas in the system").
func printStats(seed int64) {
	for _, setting := range []struct {
		label string
		mut   func(*workload.Config)
	}{
		{"defaults (Table 1)", func(*workload.Config) {}},
		{"b=0", func(c *workload.Config) { c.BackedgeProb = 0 }},
		{"b=1", func(c *workload.Config) { c.BackedgeProb = 1 }},
		{"r=0.5", func(c *workload.Config) { c.ReplicationProb = 0.5 }},
		{"r=1", func(c *workload.Config) { c.ReplicationProb = 1 }},
	} {
		cfg := workload.Default()
		if seed != 0 {
			cfg.Seed = seed
		}
		setting.mut(&cfg)
		p, err := cfg.GeneratePlacement()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-20s %v\n", setting.label+":", workload.Stats(p))
	}
}

func parseScale(s string) (repro.Scale, error) {
	switch s {
	case "quick":
		return repro.ScaleQuick, nil
	case "medium":
		return repro.ScaleMedium, nil
	case "full":
		return repro.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replbench:", err)
	os.Exit(1)
}
