// Command replexplain is the contention and freshness observatories'
// post-mortem reader: it explains a finished run from its trace artifacts
// alone, no live cluster required. Point it at a trace JSONL (replbench
// -trace, a watchdog flight recording, or a replnode dump) and it
// reconstructs the abort root-cause taxonomy, the per-protocol commit
// critical-path profile, and the per-(protocol, edge) propagation
// waterfalls; add the wait-for JSONL a run or watchdog dump produced and
// it renders who was blocked on whom:
//
//	replbench -trace run.jsonl -traceproto backedge -contend -waitfor wf.jsonl
//	replexplain run.jsonl
//	replexplain -waitfor wf.jsonl run.jsonl
//	replexplain -json run.jsonl | jq .aborts
//
// The -json report is a contend.Report without the heat table: heat lives
// in the lock managers, not the trace, so a post-mortem can't recover it
// (replbench -contend -json embeds it at run time instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/fresh"
	"repro/internal/trace"
)

func main() {
	var (
		waitfor  = flag.String("waitfor", "", "wait-for snapshot JSONL to render alongside the trace")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON instead of text")
		verify   = flag.Bool("verify", false, "also run span invariant checks over the trace")
		chainsOn = flag.Bool("chains", true, "include span chains in critical-path profiles")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: replexplain [-waitfor wf.jsonl] [-json] <trace.jsonl>  (use '-' for stdin)")
		os.Exit(2)
	}
	events, err := readEvents(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	report := &contend.Report{Aborts: contend.AbortBreakdown(events)}
	report.Paths = contend.AnalyzeCriticalPaths(events)
	for _, p := range report.Paths {
		p.Protocol = core.Protocol(p.Proto).String()
		if !*chainsOn {
			p.Chains = nil
		}
	}
	waterfalls := fresh.BuildWaterfalls(events)
	for _, wf := range waterfalls {
		wf.Protocol = core.Protocol(wf.Proto).String()
	}
	if *waitfor != "" {
		f, err := os.Open(*waitfor)
		if err != nil {
			fatal(err)
		}
		report.WaitGraphs, err = contend.ReadWaitGraphs(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *waitfor, err))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			*contend.Report
			Waterfalls []*fresh.Waterfall `json:"waterfalls,omitempty"`
		}{report, waterfalls}); err != nil {
			fatal(err)
		}
	} else {
		printReport(report, waterfalls, len(events))
	}

	if *verify {
		problems := trace.VerifySpans(events)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "replexplain: span invariant: %s\n", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "replexplain: span invariants hold")
	}
}

// printReport renders the post-mortem for consoles. Unlike
// contend.Report.String it has no heat section (a trace carries none) and
// leads with what a post-mortem reader wants first: why transactions died.
func printReport(r *contend.Report, waterfalls []*fresh.Waterfall, nEvents int) {
	fmt.Printf("%d trace events\n", nEvents)
	if len(r.Aborts) == 0 {
		fmt.Println("no aborts recorded")
	} else {
		var total, unknown uint64
		for _, n := range r.Aborts {
			total += n
		}
		unknown = contend.Unclassified(r.Aborts)
		fmt.Printf("== aborts by root cause (%d total, %d unclassified) ==\n", total, unknown)
		for _, l := range contend.FormatAborts(r.Aborts) {
			fmt.Println(l)
		}
	}
	if !contend.EmptyWaitGraphs(r.WaitGraphs) {
		fmt.Println("== wait-for snapshot ==")
		for _, l := range contend.FormatWaitGraphs(r.WaitGraphs) {
			fmt.Println(l)
		}
	} else if r.WaitGraphs != nil {
		fmt.Println("== wait-for snapshot ==")
		fmt.Println("(no waiters)")
	}
	if len(r.Paths) > 0 {
		fmt.Println("== commit critical paths ==")
		for _, p := range r.Paths {
			for _, l := range contend.FormatProfile(p) {
				fmt.Println(l)
			}
		}
	}
	if len(waterfalls) > 0 {
		fmt.Println("== propagation waterfalls ==")
		for _, l := range fresh.FormatWaterfalls(waterfalls) {
			fmt.Println(l)
		}
	}
}

// readEvents loads a trace JSONL from a file or stdin.
func readEvents(name string) ([]trace.Event, error) {
	var in io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	events, err := trace.ReadJSONL(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return events, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replexplain:", err)
	os.Exit(1)
}
