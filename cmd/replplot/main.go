// Command replplot renders replbench output as ASCII charts without
// external tooling. It reads either a replbench CSV (one chart per
// experiment, the paper's figure shapes) or one or more BENCH_*.json
// snapshots (the repo's perf trajectory: throughput and p95 response per
// protocol across snapshots, in argument order):
//
//	replbench -exp all -scale medium -csv > results.csv
//	replplot results.csv
//	replplot -exp fig2a -width 72 results.csv
//	replplot BENCH_baseline.json BENCH_new.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	var (
		exp    = flag.String("exp", "", "plot only this experiment (default: all found)")
		width  = flag.Int("width", 64, "chart width in columns")
		height = flag.Int("height", 16, "chart height in rows")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: replplot [-exp name] <results.csv>  (use '-' for stdin)")
		fmt.Fprintln(os.Stderr, "       replplot <BENCH_a.json> [BENCH_b.json ...]")
		os.Exit(2)
	}
	if isSnapshotArgs(flag.Args()) {
		if err := plotTrajectory(flag.Args(), *width, *height); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "replplot: multiple inputs are only supported for BENCH_*.json snapshots")
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, order, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if *exp != "" {
		r, ok := results[*exp]
		if !ok {
			fatal(fmt.Errorf("experiment %q not in file (have %v)", *exp, order))
		}
		r.PlotASCII(os.Stdout, *width, *height)
		return
	}
	for _, name := range order {
		results[name].PlotASCII(os.Stdout, *width, *height)
		fmt.Println()
	}
}

// parse reads replbench CSV rows into per-experiment results, keeping
// file order.
func parse(in io.Reader) (map[string]*harness.Result, []string, error) {
	rd := csv.NewReader(in)
	rd.FieldsPerRecord = -1
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("replplot: parse CSV: %w", err)
	}
	results := make(map[string]*harness.Result)
	var order []string
	for _, row := range rows {
		if len(row) < 5 || row[0] == "experiment" {
			continue // header or malformed/mixed line
		}
		x, err1 := strconv.ParseFloat(row[1], 64)
		thr, err2 := strconv.ParseFloat(row[3], 64)
		proto, err3 := core.ParseProtocol(row[2])
		if err1 != nil || err2 != nil || err3 != nil {
			continue // tolerate non-data lines
		}
		name := row[0]
		r, ok := results[name]
		if !ok {
			r = &harness.Result{Name: name, Title: name, XLabel: "x"}
			results[name] = r
			order = append(order, name)
		}
		r.Points = append(r.Points, harness.Point{
			X:        x,
			Protocol: proto,
			Report:   metrics.Report{ThroughputPerSite: thr},
		})
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("replplot: no data rows found")
	}
	return results, order, nil
}

// isSnapshotArgs reports whether the arguments look like BenchSnapshot
// files (any .json suffix selects trajectory mode; a stale CSV named
// .json fails loudly in ReadSnapshotFile rather than silently mis-plotting).
func isSnapshotArgs(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".json") {
			return true
		}
	}
	return false
}

// plotTrajectory charts throughput and p95 response per protocol across
// the given snapshots, x = snapshot position in argument order. When the
// snapshots carry a freshness block (schema v3), it adds the
// staleness-vs-throughput frontier; schema v2 files still plot the perf
// charts and skip the frontier with a note.
func plotTrajectory(paths []string, width, height int) error {
	var snaps []*bench.Snapshot
	for _, p := range paths {
		s, err := bench.ReadSnapshotFile(p)
		if err != nil {
			return err
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		fmt.Println("(no snapshots)")
		return nil
	}
	res := harness.Result{
		Name:   "trajectory",
		Title:  "perf trajectory",
		XLabel: "snapshot",
	}
	// The frontier plots each (snapshot, protocol) point at its measured
	// throughput instead of its argument position, so the chart answers
	// the protocol-design question directly: what staleness does each
	// engine pay for its throughput?
	frontier := harness.Result{
		Name:   "freshness-frontier",
		Title:  "staleness-vs-throughput frontier",
		XLabel: "throughput/site",
	}
	staleBy := map[core.Protocol]map[float64]float64{}
	fmt.Println("snapshots:")
	for i, s := range snaps {
		fmt.Printf("  %d: %s (suite=%s seed=%d %s)\n", i, s.Label, s.Suite, s.Seed, s.CreatedAt)
		for _, pr := range s.Protocols {
			proto, err := core.ParseProtocol(pr.Protocol)
			if err != nil {
				continue // unknown engine in a newer snapshot; skip its series
			}
			res.Points = append(res.Points, harness.Point{
				X:        float64(i),
				Protocol: proto,
				Report: metrics.Report{
					ThroughputPerSite: pr.ThroughputPerSite,
					P95Response:       time.Duration(pr.P95ResponseUS * float64(time.Microsecond)),
				},
			})
			if pr.Freshness != nil {
				frontier.Points = append(frontier.Points, harness.Point{
					X:        pr.ThroughputPerSite,
					Protocol: proto,
					Report:   metrics.Report{ThroughputPerSite: pr.ThroughputPerSite},
				})
				if staleBy[proto] == nil {
					staleBy[proto] = map[float64]float64{}
				}
				staleBy[proto][pr.ThroughputPerSite] = pr.Freshness.StaleReadPct
			}
		}
	}
	if len(snaps) == 1 {
		fmt.Println("  (single snapshot: trajectory charts collapse to one column; pass two or more to see movement)")
	}
	fmt.Println()
	res.PlotASCII(os.Stdout, width, height)
	fmt.Println()
	res.PlotSeriesASCII(os.Stdout, width, height, "p95 response (µs)",
		func(p harness.Point) float64 { return float64(p.Report.P95Response) / float64(time.Microsecond) })
	fmt.Println()
	if len(frontier.Points) == 0 {
		fmt.Println("(no freshness blocks in these snapshots — schema v2 or older; staleness frontier skipped)")
		return nil
	}
	frontier.PlotSeriesASCII(os.Stdout, width, height, "stale reads (%)",
		func(p harness.Point) float64 { return staleBy[p.Protocol][p.X] })
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replplot:", err)
	os.Exit(1)
}
