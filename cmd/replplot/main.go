// Command replplot renders replbench CSV output as ASCII charts, one per
// experiment — a quick way to eyeball the paper's figure shapes from a
// saved run without external tooling:
//
//	replbench -exp all -scale medium -csv > results.csv
//	replplot results.csv
//	replplot -exp fig2a -width 72 results.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	var (
		exp    = flag.String("exp", "", "plot only this experiment (default: all found)")
		width  = flag.Int("width", 64, "chart width in columns")
		height = flag.Int("height", 16, "chart height in rows")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: replplot [-exp name] <results.csv>  (use '-' for stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, order, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if *exp != "" {
		r, ok := results[*exp]
		if !ok {
			fatal(fmt.Errorf("experiment %q not in file (have %v)", *exp, order))
		}
		r.PlotASCII(os.Stdout, *width, *height)
		return
	}
	for _, name := range order {
		results[name].PlotASCII(os.Stdout, *width, *height)
		fmt.Println()
	}
}

// parse reads replbench CSV rows into per-experiment results, keeping
// file order.
func parse(in io.Reader) (map[string]*harness.Result, []string, error) {
	rd := csv.NewReader(in)
	rd.FieldsPerRecord = -1
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("replplot: parse CSV: %w", err)
	}
	results := make(map[string]*harness.Result)
	var order []string
	for _, row := range rows {
		if len(row) < 5 || row[0] == "experiment" {
			continue // header or malformed/mixed line
		}
		x, err1 := strconv.ParseFloat(row[1], 64)
		thr, err2 := strconv.ParseFloat(row[3], 64)
		proto, err3 := core.ParseProtocol(row[2])
		if err1 != nil || err2 != nil || err3 != nil {
			continue // tolerate non-data lines
		}
		name := row[0]
		r, ok := results[name]
		if !ok {
			r = &harness.Result{Name: name, Title: name, XLabel: "x"}
			results[name] = r
			order = append(order, name)
		}
		r.Points = append(r.Points, harness.Point{
			X:        x,
			Protocol: proto,
			Report:   metrics.Report{ThroughputPerSite: thr},
		})
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("replplot: no data rows found")
	}
	return results, order, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replplot:", err)
	os.Exit(1)
}
