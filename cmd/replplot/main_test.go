package main

import (
	"strings"
	"testing"
)

const sampleCSV = `experiment,x,protocol,throughput_per_site,abort_rate_pct,mean_response_ms,p95_response_ms,mean_prop_ms,messages,remote_reads,secondaries
fig2a,0.000,BackEdge,150.0,12.0,8.0,20.0,15.0,100,0,80
fig2a,0.000,PSL,50.0,20.0,30.0,60.0,0.0,200,150,0
fig2a,1.000,BackEdge,70.0,26.0,15.0,40.0,25.0,300,0,200
fig2a,1.000,PSL,48.0,23.0,40.0,80.0,0.0,250,180,0
fig2b,0.000,BackEdge,100.0,19.0,11.0,30.0,10.0,10,0,5
`

func TestParseGroupsByExperiment(t *testing.T) {
	results, order, err := parse(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fig2a" || order[1] != "fig2b" {
		t.Fatalf("order = %v", order)
	}
	if n := len(results["fig2a"].Points); n != 4 {
		t.Errorf("fig2a points = %d, want 4", n)
	}
	p := results["fig2a"].Points[0]
	if p.X != 0 || p.Report.ThroughputPerSite != 150 {
		t.Errorf("first point = %+v", p)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	in := "experiment,x,protocol,thr\nnot,a,valid,row\n" + "fig2a,0.5,PSL,10,0,0,0,0,0,0,0\n"
	results, order, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || len(results["fig2a"].Points) != 1 {
		t.Errorf("results = %v order = %v", results, order)
	}
}

func TestParseEmptyErrors(t *testing.T) {
	if _, _, err := parse(strings.NewReader("experiment,x\n")); err == nil {
		t.Error("empty input accepted")
	}
}
