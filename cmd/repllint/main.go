// Command repllint runs the repository's protocol-invariant analyzer
// suite (internal/lint) over a set of packages and prints findings in the
// familiar path:line:col format. It exits 1 if any diagnostic survives
// suppression, 2 on operational errors.
//
// Usage:
//
//	repllint [-only name[,name]] [-list] [packages]
//
// Packages default to ./... relative to the current directory. -only
// restricts the run to a comma-separated subset of analyzers; -list
// prints the suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "repllint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repllint:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repllint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
