// Command repllint runs the repository's protocol-invariant analyzer
// suite (internal/lint) over a set of packages and prints findings in the
// familiar path:line:col format. It exits 1 if any diagnostic survives
// suppression, 2 on operational errors.
//
// Usage:
//
//	repllint [-only name[,name]] [-list] [-tests] [-json] [packages]
//
// Packages default to ./... relative to the current directory. -only
// restricts the run to a comma-separated subset of analyzers; -list
// prints the suite and exits. -tests includes each package's in-package
// _test.go files. -json emits one machine-readable diagnostic object per
// line instead of the human format (the exit status is unchanged).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape: flat fields a CI
// problem matcher or artifact consumer can pick apart without knowing
// go/token types.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON lines")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "repllint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadFn := lint.Load
	if *tests {
		loadFn = lint.LoadTests
	}
	prog, err := loadFn(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repllint:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repllint:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			_ = enc.Encode(jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
