// Command repltop is the live cluster console of the telemetry plane
// (docs/OBSERVABILITY.md): it aggregates the telemetry streams of N
// replnode processes and renders one cluster view — per-protocol
// throughput, per-site staleness and version lag, phase-latency heat,
// active watchdog alerts, and recent cross-process span traces.
//
// Aggregation mode (the default) listens for publisher connections:
//
//	repltop -listen :7780
//	replnode -site 0 ... -telemetry 127.0.0.1:7780
//	replnode -site 1 ... -telemetry 127.0.0.1:7780
//
// Scrape mode polls /metrics pages of nodes started with -obs instead,
// trading span federation and alerts for zero node-side configuration:
//
//	repltop -scrape http://127.0.0.1:9090/metrics,http://127.0.0.1:9091/metrics
//
// -once renders a single snapshot and exits (waiting, in aggregation
// mode, until every connected publisher has finished); -json emits the
// snapshot as JSON instead of the console layout. Both are the CI
// surface: `repltop -listen :0 -once -json` is a machine-readable
// cluster audit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

type options struct {
	listen   string
	scrape   string
	interval time.Duration
	wait     time.Duration
	once     bool
	jsonOut  bool
	// onListen, when non-nil, receives the bound aggregator address —
	// the test seam that lets publishers find a :0 listener.
	onListen func(addr string)
}

func main() {
	var opts options
	flag.StringVar(&opts.listen, "listen", "127.0.0.1:7780", "accept publisher connections on this address (replnode -telemetry)")
	flag.StringVar(&opts.scrape, "scrape", "", "poll these comma-separated /metrics URLs instead of listening (replnode -obs)")
	flag.DurationVar(&opts.interval, "interval", time.Second, "refresh interval")
	flag.DurationVar(&opts.wait, "wait", 10*time.Second, "with -once in aggregation mode: how long to wait for publishers to connect and finish")
	flag.BoolVar(&opts.once, "once", false, "render one snapshot and exit")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit the snapshot as JSON instead of the console layout")
	flag.Parse()

	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repltop:", err)
		os.Exit(1)
	}
}

func run(opts options, w io.Writer) error {
	if opts.scrape != "" {
		return runScrape(opts, w)
	}
	return runAggregate(opts, w)
}

// runAggregate listens for publisher streams and renders the merged
// view.
func runAggregate(opts options, w io.Writer) error {
	agg := telemetry.NewAggregator()
	addr, err := agg.Listen(opts.listen)
	if err != nil {
		return err
	}
	defer agg.Close()
	if opts.onListen != nil {
		opts.onListen(addr)
	}
	if !opts.once && !opts.jsonOut {
		fmt.Fprintf(w, "repltop: aggregating on %s\n", addr)
	}

	if opts.once {
		// Wait until every publisher that showed up has finished (its
		// connection closed), or the wait budget runs out — whichever
		// comes first. A run where nothing ever connects renders the
		// empty snapshot after the full wait.
		deadline := time.Now().Add(opts.wait)
		for time.Now().Before(deadline) {
			active, total := agg.ConnCounts()
			if total > 0 && active == 0 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		return render(agg.Snapshot(), opts.jsonOut, w)
	}

	for {
		time.Sleep(opts.interval)
		if !opts.jsonOut {
			fmt.Fprint(w, "\x1b[2J\x1b[H") // clear + home: full-screen redraw
		}
		if err := render(agg.Snapshot(), opts.jsonOut, w); err != nil {
			return err
		}
	}
}

// runScrape polls /metrics pages and synthesizes telemetry frames from
// them, so the one renderer serves both transports. Scraped state has
// no span events or watchdog alerts — those only travel the push path.
func runScrape(opts options, w io.Writer) error {
	urls := strings.Split(opts.scrape, ",")
	agg := telemetry.NewAggregator()
	client := &http.Client{Timeout: 5 * time.Second}
	seq := uint64(0)
	cycle := func() error {
		for _, url := range urls {
			snap, err := scrapeOne(client, url)
			if err != nil {
				if opts.once {
					return err
				}
				continue // a down node renders as a stale proc, not a dead console
			}
			seq++
			agg.Ingest(telemetry.Frame{Proc: url, Seq: seq, Kind: telemetry.FrameHello, Hello: helloFromMetrics(url, snap)})
			seq++
			agg.Ingest(telemetry.Frame{Proc: url, Seq: seq, Kind: telemetry.FrameMetrics, Metrics: snap})
		}
		return nil
	}

	if opts.once {
		if err := cycle(); err != nil {
			return err
		}
		return render(agg.Snapshot(), opts.jsonOut, w)
	}
	for {
		if err := cycle(); err != nil {
			return err
		}
		if !opts.jsonOut {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		if err := render(agg.Snapshot(), opts.jsonOut, w); err != nil {
			return err
		}
		time.Sleep(opts.interval)
	}
}

func scrapeOne(client *http.Client, url string) (map[string]int64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	snap, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return snap, nil
}

// helloFromMetrics reconstructs the hello a publisher would have sent
// from what a metrics page exposes: the protocol-info series and the
// site labels in play.
func helloFromMetrics(url string, snap map[string]int64) *telemetry.Hello {
	h := &telemetry.Hello{Proc: url}
	siteSet := map[model.SiteID]bool{}
	for key := range snap {
		if strings.HasPrefix(key, "repl_protocol_info{") {
			if open := strings.Index(key, `protocol="`); open >= 0 {
				rest := key[open+len(`protocol="`):]
				if end := strings.IndexByte(rest, '"'); end >= 0 {
					h.Protocol = rest[:end]
				}
			}
		}
		if open := strings.Index(key, `site="`); open >= 0 {
			rest := key[open+len(`site="`):]
			if end := strings.IndexByte(rest, '"'); end >= 0 {
				var n int
				if _, err := fmt.Sscanf(rest[:end], "%d", &n); err == nil {
					siteSet[model.SiteID(n)] = true
				}
			}
		}
	}
	for s := range siteSet {
		h.Sites = append(h.Sites, s)
	}
	sort.Slice(h.Sites, func(i, j int) bool { return h.Sites[i] < h.Sites[j] })
	return h
}

func render(snap telemetry.ClusterSnapshot, jsonOut bool, w io.Writer) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	snap.Render(w)
	return nil
}
