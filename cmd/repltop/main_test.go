package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestOnceJSONAggregation drives a real publisher into a repltop -once
// -json run and decodes the emitted snapshot.
func TestOnceJSONAggregation(t *testing.T) {
	addrCh := make(chan string, 1)
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			listen:   "127.0.0.1:0",
			once:     true,
			jsonOut:  true,
			wait:     10 * time.Second,
			onListen: func(addr string) { addrCh <- addr },
		}, &out)
	}()
	addr := <-addrCh

	pub, err := telemetry.NewPublisher(telemetry.Options{Proc: "nodeA", Addr: addr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pub.SetObs(reg)
	pub.Announce("backedge", []model.SiteID{0, 1})
	reg.Counter("repl_txn_committed_total", obs.Label{Key: "site", Value: "0"}).Add(3)
	tid := model.TxnID{Site: 0, Seq: 1}
	pub.Ingest(trace.Event{Kind: trace.TxnCommit, Site: 0, Peer: model.NoSite, TID: tid, Span: model.RootSpan(tid)})
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	pub.Stop() // closes the connection: -once's all-publishers-done condition

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	var snap telemetry.ClusterSnapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("output is not a JSON snapshot: %v\n%s", err, out.String())
	}
	if len(snap.Procs) != 1 || snap.Procs[0].Proc != "nodeA" || snap.Procs[0].Protocol != "backedge" {
		t.Fatalf("procs = %+v, want one nodeA running backedge", snap.Procs)
	}
	if len(snap.Sites) != 2 || snap.Sites[0].Committed != 3 {
		t.Fatalf("sites = %+v, want sites 0,1 with 3 commits at site 0", snap.Sites)
	}
	if snap.SpanTrees != 1 {
		t.Fatalf("span trees = %d, want 1", snap.SpanTrees)
	}
}

// TestOnceJSONScrape runs -once -json against a fake /metrics page and
// checks the synthesized view.
func TestOnceJSONScrape(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("repl_protocol_info", obs.Label{Key: "protocol", Value: "dagt"}).Set(1)
	reg.Counter("repl_txn_committed_total", obs.Label{Key: "site", Value: "2"}).Add(8)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = reg.WritePrometheus(w)
	}))
	defer srv.Close()

	var out strings.Builder
	if err := run(options{scrape: srv.URL, once: true, jsonOut: true}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var snap telemetry.ClusterSnapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("output is not a JSON snapshot: %v\n%s", err, out.String())
	}
	if len(snap.Sites) != 1 || snap.Sites[0].Site != 2 || snap.Sites[0].Committed != 8 {
		t.Fatalf("sites = %+v, want site 2 with 8 commits", snap.Sites)
	}
	if len(snap.Procs) != 1 || snap.Procs[0].Protocol != "dagt" {
		t.Fatalf("procs = %+v, want protocol dagt from repl_protocol_info", snap.Procs)
	}
}

// TestOnceTextRender covers the console layout path end to end.
func TestOnceTextRender(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("repl_protocol_info", obs.Label{Key: "protocol", Value: "psl"}).Set(1)
	reg.Counter("repl_remote_reads_total", obs.Label{Key: "site", Value: "0"}).Add(5)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = reg.WritePrometheus(w)
	}))
	defer srv.Close()

	var out strings.Builder
	if err := run(options{scrape: srv.URL, once: true}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"PROC", "psl", "SITE"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("console output missing %q:\n%s", want, out.String())
		}
	}
}
